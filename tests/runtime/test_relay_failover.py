"""Relay hardening: ack health-checks, failover, fallback, soft-state expiry.

Real asyncio + real loopback UDP sockets, but kept tier-1-fast: the
health knobs are instance attributes tuned down to tens of
milliseconds, and every wait polls a condition instead of sleeping a
fixed worst case.  The 20-process cluster versions of these scenarios
live behind the ``network`` marker (``tests/network/``).
"""

import asyncio
import socket

import pytest

from repro.runtime.anet import AsyncRuntime, ClusterSpec, NodeSpec, RelaySpec
from repro.runtime.relay import ChannelRelay, serve
from repro.runtime.anet import _NodeProtocol


def free_ports(count):
    socks, ports = [], []
    try:
        for _ in range(count):
            s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            s.bind(("127.0.0.1", 0))
            socks.append(s)
            ports.append(s.getsockname()[1])
        return ports
    finally:
        for s in socks:
            s.close()


async def wait_for(cond, timeout=8.0, what="condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not cond():
        if loop.time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.01)


def fast(runtime: AsyncRuntime) -> AsyncRuntime:
    """Shrink the health/backoff knobs so failover happens in ~100 ms."""
    runtime.reannounce_period = 0.05
    runtime.relay_timeout = 0.12
    runtime.relay_backoff_cap = 0.4
    return runtime


def two_node_spec(relay_ports, *, segments=("s0", "s0"), max_datagram=None):
    pa, pb = free_ports(2)
    kwargs = {}
    if max_datagram is not None:
        kwargs["max_datagram"] = max_datagram
    return ClusterSpec(
        relay=RelaySpec(host="127.0.0.1", port=relay_ports[0]),
        nodes={
            "a": NodeSpec(host="127.0.0.1", port=pa, segment=segments[0]),
            "b": NodeSpec(host="127.0.0.1", port=pb, segment=segments[1]),
        },
        relay_replicas=[
            RelaySpec(host="127.0.0.1", port=p) for p in relay_ports[1:]
        ],
        **kwargs,
    )


# ----------------------------------------------------------------------
# Ack health signal
# ----------------------------------------------------------------------
def test_relay_acks_announces_and_keeps_runtime_in_relay_mode():
    (relay_port,) = free_ports(1)
    spec = two_node_spec([relay_port])

    async def scenario():
        relay = await serve(spec, "127.0.0.1", relay_port)
        rt = fast(AsyncRuntime(spec, "a"))
        await rt.start()
        rt.activate()
        t0 = asyncio.get_running_loop().time()
        try:
            rt.subscribe("chan", lambda pkt: None)
            await wait_for(lambda: rt._last_relay_ack > t0, what="relay ack")
            assert not rt.relay_fallback
            assert rt.relay_index == 0
            assert rt.relay_failovers == 0
            assert "a" in relay.members
            assert "a" in relay.channels["chan"]
        finally:
            rt.close()
            relay.stop_sweeper()
            relay._transport.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Failover to a replica
# ----------------------------------------------------------------------
def test_failover_to_replica_restores_multicast():
    r0_port, r1_port = free_ports(2)
    spec = two_node_spec([r0_port, r1_port])

    async def scenario():
        r0 = await serve(spec, "127.0.0.1", r0_port)
        r1 = await serve(spec, "127.0.0.1", r1_port)
        pub = fast(AsyncRuntime(spec, "a"))
        sub = fast(AsyncRuntime(spec, "b"))
        await pub.start()
        await sub.start()
        pub.activate()
        sub.activate()
        got = []
        try:
            sub.subscribe("chan", got.append)
            # Healthy path first: traffic flows through the primary.
            await wait_for(lambda: "b" in r0.members, what="sub registered at r0")
            await wait_for(
                lambda: pub.publish("chan", 2, "hb", {"n": 0}, 10) and got,
                what="delivery via primary relay",
            )
            got.clear()
            # Kill the primary (socket down, sweeper off).
            r0.stop_sweeper()
            r0._transport.close()
            await wait_for(
                lambda: pub.relay_index == 1 and sub.relay_index == 1,
                what="both runtimes failing over to the replica",
            )
            assert pub.relay_failovers >= 1
            await wait_for(lambda: "b" in r1.members, what="sub registered at r1")
            await wait_for(
                lambda: pub.publish("chan", 2, "hb", {"n": 1}, 10) and got,
                what="delivery via replica relay",
            )
            assert not pub.relay_fallback  # a replica answered: no fallback
        finally:
            pub.close()
            sub.close()
            r1.stop_sweeper()
            r1._transport.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Unicast fallback when no relay is reachable
# ----------------------------------------------------------------------
def test_unicast_fallback_delivers_and_recovers():
    (dead_port,) = free_ports(1)  # reserved then released: nothing listens
    spec = two_node_spec([dead_port])

    async def scenario():
        pub = fast(AsyncRuntime(spec, "a"))
        sub = fast(AsyncRuntime(spec, "b"))
        await pub.start()
        await sub.start()
        pub.activate()
        sub.activate()
        got = []
        relay = None
        try:
            sub.subscribe("chan", got.append)
            await wait_for(lambda: pub.relay_fallback, what="publisher entering fallback")
            # Backoff between probe cycles grows but stays capped.
            assert pub._relay_probe_timeout <= pub.relay_backoff_cap
            await wait_for(
                lambda: pub.publish("chan", 2, "hb", {"n": 2}, 10) and got,
                what="delivery via direct unicast fan-out",
            )
            assert got[0].src == "a" and got[0].channel == "chan"
            # A relay coming up on the configured address is re-adopted.
            relay = await serve(spec, "127.0.0.1", dead_port)
            await wait_for(lambda: not pub.relay_fallback, what="relay re-adoption")
        finally:
            pub.close()
            sub.close()
            if relay is not None:
                relay.stop_sweeper()
                relay._transport.close()

    asyncio.run(scenario())


def test_fallback_respects_ttl_scoping():
    (dead_port,) = free_ports(1)
    spec = two_node_spec([dead_port], segments=("s0", "s1"))

    async def scenario():
        pub = fast(AsyncRuntime(spec, "a"))
        sub = fast(AsyncRuntime(spec, "b"))
        await pub.start()
        await sub.start()
        pub.activate()
        sub.activate()
        got = []
        try:
            sub.subscribe("chan", got.append)
            await wait_for(lambda: pub.relay_fallback, what="fallback")
            # TTL 1 = segment-local: a cross-segment peer must not hear it.
            for _ in range(5):
                assert pub.publish("chan", 1, "hb", {"ttl": 1}, 10) is True
                await asyncio.sleep(0.02)
            assert got == []
            # TTL 2 spans the one-router layout.
            await wait_for(
                lambda: pub.publish("chan", 2, "hb", {"ttl": 2}, 10) and got,
                what="cross-segment delivery at TTL 2",
            )
        finally:
            pub.close()
            sub.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Relay soft-state expiry
# ----------------------------------------------------------------------
class TestRelayExpiry:
    def spec(self):
        return ClusterSpec(
            relay=RelaySpec(host="127.0.0.1", port=1),
            nodes={"a": NodeSpec(host="127.0.0.1", port=2)},
        )

    def test_silent_member_expires(self):
        clock = {"now": 0.0}
        relay = ChannelRelay(self.spec(), clock=lambda: clock["now"], expiry=6.0)
        relay._on_sub({"node": "a", "segment": "s0", "channels": ["c1", "c2"]},
                      ("127.0.0.1", 5000))
        relay._on_sub({"node": "b", "segment": "s0", "channels": ["c1"]},
                      ("127.0.0.1", 5001))
        assert set(relay.channels["c1"]) == {"a", "b"}
        # b keeps re-announcing; a goes silent (SIGKILL / lost unsub).
        clock["now"] = 5.0
        relay._on_sub({"node": "b", "segment": "s0", "channels": ["c1"]},
                      ("127.0.0.1", 5001))
        clock["now"] = 8.0
        assert relay.expire() == 1
        assert "a" not in relay.members
        assert set(relay.channels["c1"]) == {"b"}
        assert "a" not in relay.channels["c2"]
        assert relay.expired == 1

    def test_reannounce_refreshes_lease(self):
        clock = {"now": 0.0}
        relay = ChannelRelay(self.spec(), clock=lambda: clock["now"], expiry=6.0)
        for step in range(5):
            clock["now"] = step * 5.0
            relay._on_sub({"node": "a", "segment": "s0", "channels": ["c"]},
                          ("127.0.0.1", 5000))
            assert relay.expire() == 0
        assert "a" in relay.members


# ----------------------------------------------------------------------
# Send guards / error_received surfacing
# ----------------------------------------------------------------------
class TestSendGuards:
    def test_oversize_datagram_refused_not_silently_lost(self):
        (dead_port,) = free_ports(1)
        # max_datagram raised past the OS limit: fragmentation is
        # disabled for frames this size, so the raw-send guard must trip.
        spec = two_node_spec([dead_port], max_datagram=200_000)

        async def scenario():
            rt = AsyncRuntime(spec, "a")
            await rt.start()
            rt.activate()
            try:
                ok = rt.send("b", "sync_resp", b"x" * 70_000, size=70_000)
                assert ok is False
                assert rt.send_errors == 1
            finally:
                rt.close()

        asyncio.run(scenario())

    def test_fragmented_oversize_send_is_accepted(self):
        (dead_port,) = free_ports(1)
        spec = two_node_spec([dead_port])  # default max_datagram: fragments

        async def scenario():
            rt = AsyncRuntime(spec, "a")
            await rt.start()
            rt.activate()
            try:
                assert rt.send("b", "sync_resp", b"x" * 70_000, size=70_000) is True
                assert rt.send_errors == 0
            finally:
                rt.close()

        asyncio.run(scenario())

    def test_error_received_counts_send_failures(self):
        (dead_port,) = free_ports(1)
        spec = two_node_spec([dead_port])

        async def scenario():
            rt = AsyncRuntime(spec, "a")
            await rt.start()
            rt.activate()
            try:
                proto = _NodeProtocol(rt)
                proto.error_received(ConnectionRefusedError("ICMP port unreachable"))
                assert rt.send_errors == 1
            finally:
                rt.close()

        asyncio.run(scenario())

    def test_send_to_unknown_destination_still_refused(self):
        (dead_port,) = free_ports(1)
        spec = two_node_spec([dead_port])

        async def scenario():
            rt = AsyncRuntime(spec, "a")
            await rt.start()
            rt.activate()
            try:
                assert rt.send("ghost", "hb", None, size=0) is False
            finally:
                rt.close()

        asyncio.run(scenario())


def test_relay_forwards_fragmented_frames_as_original_bytes():
    """A fragmented publish crosses the relay and reassembles intact."""
    (relay_port,) = free_ports(1)
    spec = two_node_spec([relay_port])
    big = {"snapshot": b"v" * 120_000}

    async def scenario():
        relay = await serve(spec, "127.0.0.1", relay_port)
        pub = fast(AsyncRuntime(spec, "a"))
        sub = fast(AsyncRuntime(spec, "b"))
        await pub.start()
        await sub.start()
        pub.activate()
        sub.activate()
        got = []
        try:
            sub.subscribe("chan", got.append)
            await wait_for(lambda: "b" in relay.members, what="sub registration")
            await wait_for(
                lambda: pub.publish("chan", 2, "sync", big, 120_000) and got,
                what="fragmented delivery through the relay",
            )
            assert got[0].payload == big
        finally:
            pub.close()
            sub.close()
            relay.stop_sweeper()
            relay._transport.close()

    asyncio.run(scenario())


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
