"""Unit tests for TTL-scoped multicast delivery."""

import pytest

from repro.net import Network, Packet
from repro.net.builders import build_overlap_topology, build_switched_cluster


def make_net(networks=2, hosts=3, **kwargs):
    topo, hosts_list = build_switched_cluster(networks, hosts)
    return Network(topo, **kwargs), hosts_list


class Collector:
    """Records (time, packet) deliveries for one host."""

    def __init__(self, net):
        self.net = net
        self.received = []

    def __call__(self, packet):
        self.received.append((self.net.now, packet))


class TestScoping:
    def test_ttl1_stays_in_segment(self):
        net, hosts = make_net(2, 3)
        sinks = {}
        for h in hosts:
            sinks[h] = Collector(net)
            net.subscribe("ch", h, sinks[h])
        net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=100)
        net.run()
        local = [h for h in hosts[1:3]]
        remote = hosts[3:]
        assert all(len(sinks[h].received) == 1 for h in local)
        assert all(len(sinks[h].received) == 0 for h in remote)

    def test_ttl2_crosses_router(self):
        net, hosts = make_net(2, 3)
        sinks = {h: Collector(net) for h in hosts}
        for h, s in sinks.items():
            net.subscribe("ch", h, s)
        net.multicast(hosts[0], "ch", ttl=2, kind="hb", payload=None, size=100)
        net.run()
        assert all(len(sinks[h].received) == 1 for h in hosts[1:])

    def test_sender_does_not_receive_own_packet(self):
        net, hosts = make_net(1, 3)
        sink = Collector(net)
        net.subscribe("ch", hosts[0], sink)
        net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=10)
        net.run()
        assert sink.received == []

    def test_only_subscribers_receive(self):
        net, hosts = make_net(1, 3)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        # hosts[2] not subscribed
        net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=10)
        net.run()
        assert len(sink.received) == 1

    def test_channels_are_independent(self):
        net, hosts = make_net(1, 3)
        s1, s2 = Collector(net), Collector(net)
        net.subscribe("ch1", hosts[1], s1)
        net.subscribe("ch2", hosts[1], s2)
        net.multicast(hosts[0], "ch1", ttl=1, kind="hb", payload=None, size=10)
        net.run()
        assert len(s1.received) == 1 and len(s2.received) == 0

    def test_overlap_topology_scoping(self):
        topo, _hosts = build_overlap_topology(hosts_per_group=1)
        net = Network(topo)
        a, b, c = "dc0-gA-h0", "dc0-gB-h0", "dc0-gC-h0"
        sinks = {h: Collector(net) for h in (a, b, c)}
        for h, s in sinks.items():
            net.subscribe("ch", h, s)
        # TTL 3 from A reaches both; TTL 3 from B reaches only A.
        net.multicast(a, "ch", ttl=3, kind="x", payload=None, size=1)
        net.run()
        assert len(sinks[b].received) == 1 and len(sinks[c].received) == 1
        net.multicast(b, "ch", ttl=3, kind="x", payload=None, size=1)
        net.run()
        assert len(sinks[a].received) == 1
        assert len(sinks[c].received) == 1  # unchanged: B's TTL-3 can't reach C


class TestDeliveryMechanics:
    def test_delivery_delayed_by_latency(self):
        net, hosts = make_net(2, 2)
        sink = Collector(net)
        net.subscribe("ch", hosts[2], sink)
        net.multicast(hosts[0], "ch", ttl=2, kind="hb", payload="data", size=10)
        net.run()
        t, pkt = sink.received[0]
        assert t == pytest.approx(net.topo.latency(hosts[0], hosts[2]))
        assert pkt.payload == "data"

    def test_send_returns_scheduled_count(self):
        net, hosts = make_net(2, 3)
        for h in hosts:
            net.subscribe("ch", h, Collector(net))
        n = net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=10)
        assert n == 2  # local segment peers only

    def test_dead_sender_sends_nothing(self):
        net, hosts = make_net(1, 3)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        net.topo.set_up(hosts[0], False)
        n = net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=10)
        net.run()
        assert n == 0 and sink.received == []

    def test_receiver_crashing_in_flight_loses_packet(self):
        net, hosts = make_net(1, 2)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=10)
        net.crash_host(hosts[1])  # crash before delivery event fires
        net.run()
        assert sink.received == []

    def test_unsubscribe_stops_delivery(self):
        net, hosts = make_net(1, 2)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        net.unsubscribe("ch", hosts[1])
        net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=10)
        net.run()
        assert sink.received == []

    def test_crash_host_unsubscribes_everywhere(self):
        net, hosts = make_net(1, 2)
        assert net.multicast_fabric.subscribers("ch") == []
        net.subscribe("ch", hosts[1], Collector(net))
        net.crash_host(hosts[1])
        assert net.multicast_fabric.subscribers("ch") == []

    def test_packet_requires_exactly_one_destination(self):
        with pytest.raises(ValueError):
            Packet(src="a", kind="x", payload=None, size=1)
        with pytest.raises(ValueError):
            Packet(src="a", kind="x", payload=None, size=1, dst="b", channel="c")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", kind="x", payload=None, size=-1, dst="b")


class TestLoss:
    def test_lossless_by_default(self):
        net, hosts = make_net(1, 2)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        for _ in range(100):
            net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=1)
        net.run()
        assert len(sink.received) == 100

    def test_loss_rate_drops_packets(self):
        net, hosts = make_net(1, 2, loss_rate=0.5, seed=1)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        for _ in range(400):
            net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=1)
        net.run()
        assert 120 < len(sink.received) < 280  # ~200 expected

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            net, hosts = make_net(1, 2, loss_rate=0.3, seed=seed)
            sink = Collector(net)
            net.subscribe("ch", hosts[1], sink)
            for _ in range(50):
                net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=1)
            net.run()
            return len(sink.received)

        assert run(7) == run(7)

    def test_invalid_loss_rate_rejected(self):
        topo, _ = build_switched_cluster(1, 2)
        with pytest.raises(ValueError):
            Network(topo, loss_rate=1.5)
        with pytest.raises(ValueError):
            Network(topo, loss_rate=-0.1)

    def test_total_loss_is_legal_and_drops_everything(self):
        # loss_rate == 1.0 used to be rejected, but a fully black fabric is
        # a legitimate fault scenario.
        net, hosts = make_net(1, 2, loss_rate=1.0, seed=3)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        for _ in range(50):
            net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=1)
        net.run()
        assert sink.received == []

    def test_lossy_fabric_without_rng_rejected(self):
        # A missing stream used to silently disable the loss process,
        # turning intended loss experiments into clean runs.
        from repro.net.multicast import MulticastFabric
        from repro.net.bandwidth import BandwidthMeter
        from repro.sim.engine import Simulator

        topo, _ = build_switched_cluster(1, 2)
        with pytest.raises(ValueError, match="loss_rng"):
            MulticastFabric(Simulator(), topo, BandwidthMeter(), 0.3, None)


class TestMetering:
    def test_rx_and_tx_recorded(self):
        net, hosts = make_net(1, 3)
        for h in hosts:
            net.subscribe("ch", h, Collector(net))
        net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=228)
        net.run()
        assert net.meter.bytes(hosts[0], "tx") == 228
        assert net.meter.bytes(hosts[1], "rx") == 228
        assert net.meter.bytes(direction="rx") == 456
        assert net.meter.packets(direction="rx") == 2
