"""Tests for the Network facade glue not covered elsewhere."""

import pytest

from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.sim import Trace


def make(**kwargs):
    topo, hosts = build_switched_cluster(1, 3)
    return Network(topo, **kwargs), hosts


class TestProcessingDelay:
    def test_proc_delay_added_to_multicast(self):
        net, hosts = make(proc_delay=0.01)
        seen = []
        net.subscribe("ch", hosts[1], lambda p: seen.append(net.now))
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.run()
        assert seen[0] == pytest.approx(net.topo.latency(hosts[0], hosts[1]) + 0.01)

    def test_proc_delay_added_to_unicast(self):
        net, hosts = make(proc_delay=0.01)
        seen = []
        net.bind(hosts[1], "p", lambda p: seen.append(net.now))
        net.unicast(hosts[0], hosts[1], kind="x", payload=None, size=1, port="p")
        net.run()
        assert seen[0] == pytest.approx(
            net.topo.unicast_latency(hosts[0], hosts[1]) + 0.01
        )


class TestTraceWiring:
    def test_custom_trace_object_used(self):
        tr = Trace(kinds={"host_crashed"})
        net, hosts = make(trace=tr)
        net.crash_host(hosts[0])
        net.recover_host(hosts[0])  # filtered out by kinds
        assert [r.kind for r in tr] == ["host_crashed"]

    def test_crash_and_recover_emit_trace(self):
        net, hosts = make()
        net.crash_host(hosts[0])
        net.recover_host(hosts[0])
        kinds = [r.kind for r in net.trace]
        assert kinds == ["host_crashed", "host_recovered"]

    def test_device_events_traced(self):
        net, hosts = make()
        net.fail_device("dc0-sw0")
        net.recover_device("dc0-sw0")
        kinds = [r.kind for r in net.trace]
        assert kinds == ["device_failed", "device_recovered"]


class TestRunHelpers:
    def test_now_property_tracks_sim(self):
        net, hosts = make()
        net.sim.call_at(3.0, lambda: None)
        net.run(until=5.0)
        assert net.now == 5.0

    def test_seeded_rng_registry(self):
        net1, _ = make(seed=9)
        net2, _ = make(seed=9)
        assert net1.rng.stream("x").random() == net2.rng.stream("x").random()

    def test_keep_bandwidth_series_flag(self):
        net, hosts = make(keep_bandwidth_series=True)
        net.subscribe("ch", hosts[1], lambda p: None)
        net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=10)
        net.run()
        assert net.meter.bucketed(bucket=1.0)  # does not raise
