"""Unit and integration tests for the chaos fault-injection plans."""

import random

import pytest

from repro.net import FaultPlan, LinkFault, Network
from repro.net.builders import build_switched_cluster


def make_net(networks=1, hosts=3, **kwargs):
    topo, hosts_list = build_switched_cluster(networks, hosts)
    return Network(topo, **kwargs), hosts_list


class Collector:
    def __init__(self, net):
        self.net = net
        self.received = []

    def __call__(self, packet):
        self.received.append((self.net.now, packet))


class TestLinkFault:
    def test_probability_bounds_validated(self):
        for field in ("loss", "reorder", "duplicate"):
            with pytest.raises(ValueError):
                LinkFault(**{field: 1.5})
            with pytest.raises(ValueError):
                LinkFault(**{field: -0.1})

    def test_negative_delays_rejected(self):
        for field in ("jitter", "reorder_window", "dup_lag"):
            with pytest.raises(ValueError):
                LinkFault(**{field: -1.0})

    def test_reorder_requires_window(self):
        with pytest.raises(ValueError):
            LinkFault(reorder=0.5)
        LinkFault(reorder=0.5, reorder_window=0.1)  # fine

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(start=5.0, until=5.0)

    def test_matching_is_directional(self):
        rule = LinkFault(src="a", dst="b", loss=1.0)
        assert rule.matches("a", "b", 0.0)
        assert not rule.matches("b", "a", 0.0)

    def test_wildcard_and_collection_sides(self):
        any_to_b = LinkFault(dst="b")
        assert any_to_b.matches("x", "b", 0.0)
        assert not any_to_b.matches("x", "c", 0.0)
        multi = LinkFault(src=["a", "b"], dst=["c", "d"])
        assert multi.matches("b", "c", 0.0)
        assert not multi.matches("c", "a", 0.0)

    def test_time_window_is_half_open(self):
        rule = LinkFault(src="a", dst="b", start=10.0, until=20.0)
        assert not rule.matches("a", "b", 9.99)
        assert rule.matches("a", "b", 10.0)
        assert rule.matches("a", "b", 19.99)
        assert not rule.matches("a", "b", 20.0)


class TestFaultPlanCore:
    def test_no_match_returns_none_and_consumes_no_rng(self):
        rng = random.Random(1)
        before = rng.getstate()
        plan = FaultPlan(rng)
        plan.add(src="a", dst="b", loss=0.5)
        assert plan.offsets("x", "y", 0.0) is None
        assert rng.getstate() == before

    def test_total_loss_drops(self):
        plan = FaultPlan(random.Random(1))
        plan.add(src="a", dst="b", loss=1.0)
        assert plan.offsets("a", "b", 0.0) == ()
        assert plan.stats["drops"] == 1

    def test_no_fault_effects_yield_zero_offset(self):
        plan = FaultPlan(random.Random(1))
        plan.add(src="a", dst="b")  # matching rule, no effects
        assert plan.offsets("a", "b", 0.0) == (0.0,)

    def test_jitter_bounded(self):
        plan = FaultPlan(random.Random(2))
        plan.add(src="a", dst="b", jitter=0.5)
        for _ in range(200):
            (off,) = plan.offsets("a", "b", 0.0)
            assert 0.0 <= off < 0.5

    def test_duplicate_offsets_trail_primary(self):
        plan = FaultPlan(random.Random(3))
        plan.add(src="a", dst="b", duplicate=1.0, dup_lag=0.2)
        offsets = plan.offsets("a", "b", 0.0)
        assert len(offsets) == 2
        primary, dup = offsets
        assert 0.0 <= dup - primary < 0.2
        assert plan.stats["duplicates"] == 1

    def test_offsets_without_rng_raises(self):
        plan = FaultPlan()
        plan.add(src="a", dst="b", loss=0.5)
        with pytest.raises(RuntimeError, match="RNG"):
            plan.offsets("a", "b", 0.0)

    def test_rules_compose_in_insertion_order(self):
        plan = FaultPlan(random.Random(4))
        plan.add(src="a", loss=1.0)  # any receiver
        plan.add(src="a", dst="b", jitter=0.1)
        # First rule drops before the second ever draws.
        assert plan.offsets("a", "b", 0.0) == ()

    def test_seeded_draws_reproducible(self):
        def draw(seed):
            plan = FaultPlan(random.Random(seed))
            plan.add(src="a", dst="b", loss=0.3, jitter=0.2,
                     reorder=0.3, reorder_window=0.5, duplicate=0.2, dup_lag=0.1)
            return [plan.offsets("a", "b", 0.0) for _ in range(100)]

        assert draw(11) == draw(11)
        assert draw(11) != draw(12)

    def test_partition_rejects_overlapping_sides(self):
        plan = FaultPlan(random.Random(0))
        with pytest.raises(ValueError, match="overlap"):
            plan.partition(["a", "b"], ["b", "c"])

    def test_partition_symmetric_and_asymmetric(self):
        plan = FaultPlan(random.Random(0))
        sym = plan.partition(["a"], ["b"], start=0.0, until=10.0)
        assert len(sym) == 2
        plan.clear()
        asym = plan.partition(["a"], ["b"], start=0.0, until=10.0, symmetric=False)
        assert len(asym) == 1
        assert plan.offsets("a", "b", 5.0) == ()
        assert plan.offsets("b", "a", 5.0) is None

    def test_severed_checks_both_directions(self):
        plan = FaultPlan(random.Random(0))
        plan.partition(["a"], ["b"], start=0.0, until=10.0, symmetric=False)
        assert plan.severed("a", "b", 5.0)
        assert plan.severed("b", "a", 5.0)  # either direction counts
        assert not plan.severed("a", "b", 15.0)  # window lapsed
        assert not plan.severed("a", "c", 5.0)

    def test_remove_heals_early(self):
        plan = FaultPlan(random.Random(0))
        (rule,) = plan.partition(["a"], ["b"], symmetric=False)
        assert plan.remove(rule)
        assert plan.offsets("a", "b", 0.0) is None
        assert not plan.remove(rule)  # already gone


class TestNetworkIntegration:
    def test_set_fault_plan_binds_chaos_stream(self):
        net, _hosts = make_net()
        plan = net.set_fault_plan(FaultPlan())
        assert plan.rng is not None
        assert net.multicast_fabric.fault_plan is plan
        assert net.transport.fault_plan is plan

    def test_ensure_fault_plan_is_idempotent(self):
        net, _hosts = make_net()
        plan = net.ensure_fault_plan()
        assert net.ensure_fault_plan() is plan

    def test_clearing_plan_removes_chaos(self):
        net, _hosts = make_net()
        net.ensure_fault_plan()
        net.set_fault_plan(None)
        assert net.multicast_fabric.fault_plan is None
        assert net.transport.fault_plan is None

    def test_unicast_directional_total_loss(self):
        net, hosts = make_net()
        a, b = hosts[0], hosts[1]
        net.ensure_fault_plan().add(src=a, dst=b, loss=1.0)
        sink_b, sink_a = Collector(net), Collector(net)
        net.bind(b, "membership", sink_b)
        net.bind(a, "membership", sink_a)
        net.unicast(a, b, kind="x", payload=None, size=1)
        net.unicast(b, a, kind="x", payload=None, size=1)
        net.run()
        assert sink_b.received == []  # severed direction
        assert len(sink_a.received) == 1  # reverse flows

    def test_multicast_directional_total_loss_fast_and_slow(self):
        for fast in (True, False):
            net, hosts = make_net(1, 3)
            net.multicast_fabric.use_fast_path = fast
            net.ensure_fault_plan().add(src=hosts[0], dst=hosts[1], loss=1.0)
            sinks = {h: Collector(net) for h in hosts[1:]}
            for h, s in sinks.items():
                net.subscribe("ch", h, s)
            net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=1)
            net.run()
            assert sinks[hosts[1]].received == []
            assert len(sinks[hosts[2]].received) == 1

    def test_duplication_delivers_twice(self):
        net, hosts = make_net()
        net.ensure_fault_plan().add(
            src=hosts[0], dst=hosts[1], duplicate=1.0, dup_lag=0.01
        )
        sink = Collector(net)
        net.bind(hosts[1], "membership", sink)
        net.unicast(hosts[0], hosts[1], kind="x", payload="p", size=1)
        net.run()
        assert len(sink.received) == 2
        assert sink.received[0][1].payload == sink.received[1][1].payload
        assert sink.received[0][0] <= sink.received[1][0]

    def test_reordering_can_invert_send_order(self):
        # Packet 1 is held back (reorder), packet 2 sent a hair later
        # overtakes it.
        net, hosts = make_net()
        plan = net.ensure_fault_plan()
        plan.add(src=hosts[0], dst=hosts[1], reorder=1.0, reorder_window=0.5,
                 until=0.0005)  # only the first send is held back
        sink = Collector(net)
        net.bind(hosts[1], "membership", sink)
        net.unicast(hosts[0], hosts[1], kind="x", payload=1, size=1)
        net.sim.call_after(0.001, lambda: net.unicast(
            hosts[0], hosts[1], kind="x", payload=2, size=1))
        net.run()
        assert [p.payload for _t, p in sink.received] == [2, 1]

    def test_chaos_stream_does_not_perturb_base_loss(self):
        # Same seed, same sends: the base-loss survivor pattern must be
        # identical with and without an active fault plan, because chaos
        # draws come from a dedicated stream, never from net.loss.
        def survivors(with_chaos):
            net, hosts = make_net(1, 3, loss_rate=0.5, seed=9)
            if with_chaos:
                net.ensure_fault_plan().add(
                    src=hosts[0], dst=hosts[2], jitter=0.001
                )
            sink = Collector(net)
            net.subscribe("ch", hosts[1], sink)
            net.subscribe("ch", hosts[2], Collector(net))
            for _ in range(100):
                net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=1)
            net.run()
            return [t for t, _p in sink.received]

        assert survivors(False) == survivors(True)

    def test_fault_stats_accumulate(self):
        net, hosts = make_net()
        plan = net.ensure_fault_plan()
        plan.add(src=hosts[0], dst=hosts[1], loss=1.0)
        net.bind(hosts[1], "membership", Collector(net))
        for _ in range(5):
            net.unicast(hosts[0], hosts[1], kind="x", payload=None, size=1)
        net.run()
        assert plan.stats["consults"] == 5
        assert plan.stats["drops"] == 5
