"""Delivery-plan cache invalidation under churn.

The fast-path fabric caches per-(channel, src, ttl) recipient plans keyed
on the topology version and a per-channel subscription version.  Every
mutation that can change who hears a send — subscribe, unsubscribe,
crash-driven unsubscribe_all, handler replacement, device up/down — must
invalidate exactly the affected plans, and in-flight packets must respect
state changes that land before delivery.
"""

import pytest

from repro.net import Network
from repro.net.builders import build_switched_cluster


def make_net(networks=2, hosts=3, **kwargs):
    topo, hosts_list = build_switched_cluster(networks, hosts)
    return Network(topo, **kwargs), hosts_list


class Collector:
    def __init__(self, net):
        self.net = net
        self.received = []

    def __call__(self, packet):
        self.received.append((self.net.now, packet))


class TestPlanReuse:
    def test_repeat_sends_reuse_cached_plan(self):
        net, hosts = make_net(1, 3)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        for _ in range(5):
            net.multicast(hosts[0], "ch", ttl=1, kind="hb", payload=None, size=1)
        net.run()
        fabric = net.multicast_fabric
        assert len(sink.received) == 5
        assert ("ch", hosts[0], 1) in fabric._plans

    def test_plans_distinct_per_ttl_and_src(self):
        net, hosts = make_net(2, 2)
        for h in hosts:
            net.subscribe("ch", h, Collector(net))
        assert net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1) == 1
        assert net.multicast(hosts[0], "ch", ttl=2, kind="x", payload=None, size=1) == 3
        assert net.multicast(hosts[2], "ch", ttl=1, kind="x", payload=None, size=1) == 1
        assert len(net.multicast_fabric._plans) == 3


class TestSubscriptionChurn:
    def test_new_subscriber_after_cached_send_receives(self):
        net, hosts = make_net(1, 3)
        s1, s2 = Collector(net), Collector(net)
        net.subscribe("ch", hosts[1], s1)
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.run()
        net.subscribe("ch", hosts[2], s2)  # must invalidate the cached plan
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.run()
        assert len(s1.received) == 2
        assert len(s2.received) == 1

    def test_unsubscribe_after_cached_send_stops_delivery(self):
        net, hosts = make_net(1, 3)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.run()
        net.unsubscribe("ch", hosts[1])
        n = net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.run()
        assert n == 0
        assert len(sink.received) == 1

    def test_unsubscribe_mid_flight_drops_inflight_packet(self):
        net, hosts = make_net(1, 2)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.unsubscribe("ch", hosts[1])  # while the packet is in the air
        net.run()
        assert sink.received == []

    def test_subscribe_mid_flight_does_not_receive_earlier_send(self):
        net, hosts = make_net(1, 3)
        s1, s2 = Collector(net), Collector(net)
        net.subscribe("ch", hosts[1], s1)
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.subscribe("ch", hosts[2], s2)  # too late for the in-flight packet
        net.run()
        assert len(s1.received) == 1
        assert s2.received == []

    def test_handler_replacement_invalidates_plan(self):
        net, hosts = make_net(1, 2)
        old, new = Collector(net), Collector(net)
        net.subscribe("ch", hosts[1], old)
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.run()
        net.subscribe("ch", hosts[1], new)  # replace handler in place
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.run()
        assert len(old.received) == 1
        assert len(new.received) == 1

    def test_handler_replacement_mid_flight_drops_inflight_packet(self):
        # Matches the legacy identity check: a packet sent to handler A is
        # not delivered to replacement handler B at the same host.
        net, hosts = make_net(1, 2)
        old, new = Collector(net), Collector(net)
        net.subscribe("ch", hosts[1], old)
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        net.subscribe("ch", hosts[1], new)
        net.run()
        assert old.received == []
        assert new.received == []

    def test_crash_unsubscribe_all_invalidates_every_channel(self):
        net, hosts = make_net(1, 3)
        s_a, s_b = Collector(net), Collector(net)
        net.subscribe("chA", hosts[1], s_a)
        net.subscribe("chB", hosts[1], s_b)
        net.multicast(hosts[0], "chA", ttl=1, kind="x", payload=None, size=1)
        net.multicast(hosts[0], "chB", ttl=1, kind="x", payload=None, size=1)
        net.run()
        net.crash_host(hosts[1])
        assert net.multicast(hosts[0], "chA", ttl=1, kind="x", payload=None, size=1) == 0
        assert net.multicast(hosts[0], "chB", ttl=1, kind="x", payload=None, size=1) == 0
        net.run()
        assert len(s_a.received) == 1 and len(s_b.received) == 1


class TestTopologyChurn:
    def test_switch_down_partitions_cached_plan(self):
        net, hosts = make_net(2, 3)
        sinks = {h: Collector(net) for h in hosts}
        for h, s in sinks.items():
            net.subscribe("ch", h, s)
        assert net.multicast(hosts[0], "ch", ttl=2, kind="x", payload=None, size=1) == 5
        net.run()
        # Down the second network's switch: its segment drops off the plan.
        net.fail_device("dc0-sw1")
        n = net.multicast(hosts[0], "ch", ttl=2, kind="x", payload=None, size=1)
        net.run()
        assert n == 2  # only the sender's segment peers remain reachable
        for h in hosts[3:]:
            assert len(sinks[h].received) == 1  # nothing after the partition

    def test_switch_recovery_restores_plan(self):
        net, hosts = make_net(2, 2)
        sinks = {h: Collector(net) for h in hosts}
        for h, s in sinks.items():
            net.subscribe("ch", h, s)
        net.fail_device("dc0-sw1")
        assert net.multicast(hosts[0], "ch", ttl=2, kind="x", payload=None, size=1) == 1
        net.recover_device("dc0-sw1")
        assert net.multicast(hosts[0], "ch", ttl=2, kind="x", payload=None, size=1) == 3
        net.run()
        assert len(sinks[hosts[2]].received) == 1

    def test_host_down_then_up_rejoins_plans(self):
        net, hosts = make_net(1, 3)
        sink = Collector(net)
        net.subscribe("ch", hosts[1], sink)
        net.topo.set_up(hosts[1], False)
        assert net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1) == 0
        net.topo.set_up(hosts[1], True)
        assert net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1) == 1
        net.run()
        assert len(sink.received) == 1

    def test_receiver_down_at_delivery_time_is_skipped(self):
        net, hosts = make_net(1, 3)
        s1, s2 = Collector(net), Collector(net)
        net.subscribe("ch", hosts[1], s1)
        net.subscribe("ch", hosts[2], s2)
        net.multicast(hosts[0], "ch", ttl=1, kind="x", payload=None, size=1)
        # Both receivers share one delay bucket; downing one mid-flight must
        # not disturb the other's delivery.
        net.topo.set_up(hosts[1], False)
        net.run()
        assert s1.received == []
        assert len(s2.received) == 1


class TestFastSlowEquivalence:
    @pytest.mark.parametrize("loss_rate,seed", [(0.0, 1), (0.25, 9)])
    def test_paths_deliver_identically(self, loss_rate, seed):
        def run(fast):
            net, hosts = make_net(2, 4, loss_rate=loss_rate, seed=seed)
            net.multicast_fabric.use_fast_path = fast
            sinks = {h: Collector(net) for h in hosts}
            for h, s in sinks.items():
                net.subscribe("ch", h, s)
            counts = []
            for src in hosts[:3]:
                for ttl in (1, 2):
                    counts.append(
                        net.multicast(src, "ch", ttl=ttl, kind="x", payload=None, size=7)
                    )
            net.run()
            deliveries = {
                h: [(t, p.src, p.ttl) for t, p in s.received] for h, s in sinks.items()
            }
            return counts, deliveries, net.meter.packets(direction="rx")

        assert run(True) == run(False)
