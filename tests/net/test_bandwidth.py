"""Unit tests for the nested-counter BandwidthMeter."""

import pytest

from repro.net.bandwidth import BandwidthMeter


class TestRecord:
    def test_totals_by_host_and_direction(self):
        m = BandwidthMeter()
        m.record(0.0, "h1", "rx", "hb", 100)
        m.record(1.0, "h1", "rx", "hb", 50)
        m.record(2.0, "h1", "tx", "hb", 30)
        m.record(3.0, "h2", "rx", "update", 20)
        assert m.bytes("h1", "rx") == 150
        assert m.bytes("h1", "tx") == 30
        assert m.bytes(direction="rx") == 170
        assert m.packets("h1", "rx") == 2
        assert m.packets(direction="rx") == 3
        assert m.bytes("missing", "rx") == 0
        assert m.packets("missing", "tx") == 0

    def test_bytes_by_kind(self):
        m = BandwidthMeter()
        m.record(0.0, "h1", "rx", "hb", 100)
        m.record(0.0, "h2", "rx", "hb", 10)
        m.record(0.0, "h1", "rx", "update", 7)
        m.record(0.0, "h1", "tx", "hb", 999)
        assert m.bytes_by_kind("hb") == 110
        assert m.bytes_by_kind("hb", direction="tx") == 999
        assert m.bytes_by_kind("nope") == 0

    def test_duration_and_rates(self):
        m = BandwidthMeter()
        m.record(2.0, "h1", "rx", "hb", 100)
        m.record(6.0, "h1", "rx", "hb", 100)
        assert m.duration == 4.0
        assert m.aggregate_rate("rx") == pytest.approx(50.0)
        assert m.packet_rate("h1", "rx") == pytest.approx(0.5)
        assert m.per_host_rates("rx") == {"h1": pytest.approx(50.0)}

    def test_reset_clears_everything(self):
        m = BandwidthMeter(keep_series=True)
        m.record(1.0, "h1", "rx", "hb", 100)
        m.reset()
        assert m.bytes(direction="rx") == 0
        assert m.duration == 0.0
        assert m.bucketed() == []


class TestRecordMany:
    def test_equivalent_to_individual_records(self):
        batch, single = BandwidthMeter(keep_series=True), BandwidthMeter(keep_series=True)
        hosts = ["h1", "h2", "h3"]
        batch.record_many(5.0, hosts, "rx", "hb", 228)
        for h in hosts:
            single.record(5.0, h, "rx", "hb", 228)
        for h in hosts:
            assert batch.bytes(h, "rx") == single.bytes(h, "rx") == 228
            assert batch.packets(h, "rx") == single.packets(h, "rx") == 1
        assert batch.bytes_by_kind("hb") == single.bytes_by_kind("hb")
        assert batch.duration == single.duration
        assert batch.bucketed() == single.bucketed()

    def test_empty_batch_is_noop_except_time(self):
        m = BandwidthMeter()
        m.record_many(3.0, [], "rx", "hb", 10)
        assert m.packets(direction="rx") == 0
        # Time bounds still observe the batch instant, mirroring a tx-only
        # record at that time.
        assert m.duration == 0.0

    def test_repeat_host_counts_twice(self):
        m = BandwidthMeter()
        m.record_many(0.0, ["h1", "h1"], "rx", "hb", 10)
        assert m.packets("h1", "rx") == 2
        assert m.bytes("h1", "rx") == 20

    def test_series_entries_per_host(self):
        m = BandwidthMeter(keep_series=True)
        m.record_many(1.5, ["a", "b"], "rx", "hb", 4)
        assert m.bucketed(bucket=1.0) == [(1.0, 8)]
