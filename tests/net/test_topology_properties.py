"""Property-based tests for topology distances and the analysis models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AllToAllModel, AnalysisParams, GossipModel, HierarchicalModel
from repro.net import Topology, UNREACHABLE
from repro.net.builders import build_router_tree, build_switched_cluster


@st.composite
def random_topologies(draw):
    """A random connected device graph: routers in a tree + hosts hung off
    random routers through switches."""
    t = Topology()
    n_routers = draw(st.integers(min_value=1, max_value=5))
    for i in range(n_routers):
        t.add_router(f"r{i}")
        if i > 0:
            parent = draw(st.integers(min_value=0, max_value=i - 1))
            t.add_link(f"r{i}", f"r{parent}")
    n_hosts = draw(st.integers(min_value=2, max_value=8))
    for i in range(n_hosts):
        r = draw(st.integers(min_value=0, max_value=n_routers - 1))
        t.add_switch(f"s{i}")
        t.add_link(f"s{i}", f"r{r}")
        t.add_host(f"h{i}")
        t.add_link(f"h{i}", f"s{i}")
    return t


class TestTtlDistanceProperties:
    @given(random_topologies())
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, t):
        hosts = t.hosts()
        for a in hosts:
            for b in hosts:
                assert t.ttl_distance(a, b) == t.ttl_distance(b, a)

    @given(random_topologies())
    @settings(max_examples=100, deadline=None)
    def test_self_distance_zero_and_others_positive(self, t):
        for h in t.hosts():
            assert t.ttl_distance(h, h) == 0
            for other in t.hosts():
                if other != h:
                    assert t.ttl_distance(h, other) >= 1

    @given(random_topologies())
    @settings(max_examples=100, deadline=None)
    def test_connected_tree_reaches_everyone(self, t):
        hosts = t.hosts()
        for a in hosts:
            for b in hosts:
                assert t.ttl_distance(a, b) != UNREACHABLE

    @given(random_topologies())
    @settings(max_examples=60, deadline=None)
    def test_adding_a_link_never_increases_distance(self, t):
        hosts = t.hosts()
        routers = t.devices()
        before = {
            (a, b): t.ttl_distance(a, b) for a in hosts for b in hosts
        }
        # Add a shortcut between two random existing routers (if >=2).
        rs = [d for d in routers if d.startswith("r")]
        if len(rs) >= 2 and rs[1] not in t.neighbors(rs[0]):
            t.add_link(rs[0], rs[1])
            for (a, b), old in before.items():
                assert t.ttl_distance(a, b) <= old

    @given(random_topologies())
    @settings(max_examples=60, deadline=None)
    def test_hosts_within_matches_distance(self, t):
        hosts = t.hosts()
        src = hosts[0]
        for ttl in (1, 2, 3):
            within = set(t.hosts_within(src, ttl))
            expected = {h for h in hosts if h != src and t.ttl_distance(src, h) <= ttl}
            assert within == expected


class TestModelProperties:
    @given(st.integers(min_value=2, max_value=5000), st.integers(min_value=2, max_value=5000))
    @settings(max_examples=200, deadline=None)
    def test_bandwidth_monotone_in_n(self, a, b):
        for model in (AllToAllModel(), GossipModel(), HierarchicalModel()):
            lo, hi = min(a, b), max(a, b)
            assert model.aggregate_bandwidth(lo) <= model.aggregate_bandwidth(hi)

    @given(st.integers(min_value=21, max_value=5000))
    @settings(max_examples=200, deadline=None)
    def test_hierarchical_always_cheapest_beyond_one_group(self, n):
        h, a, g = HierarchicalModel(), AllToAllModel(), GossipModel()
        assert h.aggregate_bandwidth(n) <= a.aggregate_bandwidth(n)
        assert h.bdt(n) <= a.bdt(n) <= g.bdt(n)

    @given(st.integers(min_value=2, max_value=5000))
    @settings(max_examples=200, deadline=None)
    def test_convergence_at_least_detection(self, n):
        for model in (AllToAllModel(), GossipModel(), HierarchicalModel()):
            assert model.convergence_time(n) >= model.detection_time(n)

    @given(
        st.integers(min_value=2, max_value=2000),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_detection_scales_inverse_with_freq(self, n, freq):
        base = AllToAllModel(AnalysisParams(freq=1.0)).detection_time(n)
        scaled = AllToAllModel(AnalysisParams(freq=freq)).detection_time(n)
        assert math.isclose(scaled, base / freq, rel_tol=1e-9)
