"""Unit tests for the topology graph and TTL-distance semantics."""

import pytest

from repro.net import NodeKind, Topology, UNREACHABLE
from repro.net.builders import (
    build_overlap_topology,
    build_router_tree,
    build_switched_cluster,
    build_two_datacenters,
)


def simple_two_segment():
    """Two L2 segments joined by one router."""
    t = Topology()
    t.add_router("r")
    for seg in ("a", "b"):
        t.add_switch(f"s{seg}")
        t.add_link(f"s{seg}", "r", latency=0.0002)
        for i in range(2):
            t.add_host(f"{seg}{i}")
            t.add_link(f"{seg}{i}", f"s{seg}", latency=0.0001)
    return t


class TestBasics:
    def test_duplicate_device_rejected(self):
        t = Topology()
        t.add_host("h")
        with pytest.raises(ValueError):
            t.add_switch("h")

    def test_link_unknown_device_rejected(self):
        t = Topology()
        t.add_host("h")
        with pytest.raises(ValueError):
            t.add_link("h", "ghost")

    def test_self_link_rejected(self):
        t = Topology()
        t.add_host("h")
        with pytest.raises(ValueError):
            t.add_link("h", "h")

    def test_kind_and_dc(self):
        t = Topology()
        t.add_host("h", dc="west")
        assert t.kind("h") is NodeKind.HOST
        assert t.dc("h") == "west"

    def test_hosts_filter_by_dc(self):
        t = Topology()
        t.add_host("h1", dc="a")
        t.add_host("h2", dc="b")
        t.add_switch("s", dc="a")
        assert t.hosts() == ["h1", "h2"]
        assert t.hosts(dc="a") == ["h1"]

    def test_datacenters(self):
        t = Topology()
        t.add_host("h1", dc="b")
        t.add_host("h2", dc="a")
        assert t.datacenters() == ["a", "b"]

    def test_version_bumps_on_mutation(self):
        t = Topology()
        v0 = t.version
        t.add_host("h")
        assert t.version > v0


class TestTtlDistance:
    def test_same_segment_is_one(self):
        t = simple_two_segment()
        assert t.ttl_distance("a0", "a1") == 1

    def test_across_one_router_is_two(self):
        t = simple_two_segment()
        assert t.ttl_distance("a0", "b0") == 2

    def test_self_distance_zero(self):
        t = simple_two_segment()
        assert t.ttl_distance("a0", "a0") == 0

    def test_symmetry(self):
        t = simple_two_segment()
        assert t.ttl_distance("a0", "b1") == t.ttl_distance("b1", "a0")

    def test_switches_do_not_decrement_ttl(self):
        # host - sw1 - sw2 - host chain: still TTL 1.
        t = Topology()
        t.add_switch("s1")
        t.add_switch("s2")
        t.add_link("s1", "s2")
        t.add_host("h1")
        t.add_host("h2")
        t.add_link("h1", "s1")
        t.add_link("h2", "s2")
        assert t.ttl_distance("h1", "h2") == 1

    def test_latency_sums_along_path(self):
        t = simple_two_segment()
        assert t.latency("a0", "b0") == pytest.approx(0.0001 + 0.0002 + 0.0002 + 0.0001)

    def test_hosts_within_ttl(self):
        t = simple_two_segment()
        assert sorted(t.hosts_within("a0", 1)) == ["a1"]
        assert sorted(t.hosts_within("a0", 2)) == ["a1", "b0", "b1"]

    def test_unreachable_without_path(self):
        t = Topology()
        t.add_host("h1")
        t.add_host("h2")
        assert t.ttl_distance("h1", "h2") == UNREACHABLE

    def test_max_ttl_diameter(self):
        t = simple_two_segment()
        assert t.max_ttl_diameter() == 2


class TestFailures:
    def test_downed_router_partitions(self):
        t = simple_two_segment()
        t.set_up("r", False)
        assert t.ttl_distance("a0", "b0") == UNREACHABLE
        assert t.ttl_distance("a0", "a1") == 1  # local segment unaffected

    def test_downed_switch_isolates_segment(self):
        t = simple_two_segment()
        t.set_up("sa", False)
        assert t.ttl_distance("a0", "a1") == UNREACHABLE
        assert t.ttl_distance("b0", "b1") == 1

    def test_downed_host_unreachable_both_ways(self):
        t = simple_two_segment()
        t.set_up("a0", False)
        assert t.ttl_distance("a1", "a0") == UNREACHABLE
        assert t.ttl_distance("a0", "a1") == UNREACHABLE

    def test_recovery_restores_distance(self):
        t = simple_two_segment()
        t.set_up("r", False)
        t.set_up("r", True)
        assert t.ttl_distance("a0", "b0") == 2

    def test_unknown_device_set_up_raises(self):
        t = Topology()
        with pytest.raises(ValueError):
            t.set_up("ghost", True)

    def test_remove_link(self):
        t = simple_two_segment()
        t.remove_link("sa", "r")
        assert t.ttl_distance("a0", "b0") == UNREACHABLE


class TestBuilders:
    def test_switched_cluster_shape(self):
        t, hosts = build_switched_cluster(5, 20)
        assert len(hosts) == 100
        assert t.ttl_distance(hosts[0], hosts[1]) == 1
        assert t.ttl_distance(hosts[0], hosts[20]) == 2
        assert t.max_ttl_diameter() == 2

    def test_switched_cluster_single_network_has_no_router(self):
        t, hosts = build_switched_cluster(1, 4)
        assert len(hosts) == 4
        assert t.devices(NodeKind.ROUTER) == []
        assert t.max_ttl_diameter() == 1

    def test_switched_cluster_invalid_args(self):
        with pytest.raises(ValueError):
            build_switched_cluster(0, 5)

    def test_router_tree_distances(self):
        t, hosts = build_router_tree(depth=3, branching=2, hosts_per_leaf=2)
        assert len(hosts) == 8  # 4 leaves x 2
        # Same leaf: TTL 1.
        assert t.ttl_distance(hosts[0], hosts[1]) == 1
        # Sibling leaves share a depth-2 router: leaf_i + parent + leaf_j = 3 routers.
        assert t.ttl_distance(hosts[0], hosts[2]) == 4
        # Opposite sides of the root cross 5 routers.
        assert t.ttl_distance(hosts[0], hosts[-1]) == 6

    def test_overlap_topology_matches_fig4(self):
        t, hosts = build_overlap_topology(hosts_per_group=2)
        a, b, c = "dc0-gA-h0", "dc0-gB-h0", "dc0-gC-h0"
        assert t.ttl_distance(a, b) == 3
        assert t.ttl_distance(a, c) == 3
        assert t.ttl_distance(b, c) == 4  # non-transitive!
        assert len(hosts) == 6

    def test_two_datacenters_multicast_isolation(self):
        t, dca, dcb = build_two_datacenters(2, 3)
        assert len(dca) == 6 and len(dcb) == 6
        # Multicast (TTL) distance never crosses the WAN.
        assert t.ttl_distance(dca[0], dcb[0]) == UNREACHABLE
        # Unicast does, and pays the WAN latency.
        lat = t.unicast_latency(dca[0], dcb[0])
        assert lat != UNREACHABLE
        assert lat >= 0.045

    def test_two_datacenters_intra_dc_unaffected(self):
        t, dca, _ = build_two_datacenters(2, 3)
        assert t.ttl_distance(dca[0], dca[1]) == 1
        assert t.ttl_distance(dca[0], dca[3]) == 2

    def test_unicast_latency_self_is_zero(self):
        t, hosts = build_switched_cluster(1, 2)
        assert t.unicast_latency(hosts[0], hosts[0]) == 0.0

    def test_reachable(self):
        t, dca, dcb = build_two_datacenters(1, 2)
        assert t.reachable(dca[0], dcb[0])
        t.set_up(f"dcA-border", False)
        assert not t.reachable(dca[0], dcb[0])
        assert t.reachable(dca[0], dca[1])
