"""Unit tests for unicast transport, virtual addresses, bandwidth meter."""

import pytest

from repro.net import BandwidthMeter, Network
from repro.net.builders import build_switched_cluster, build_two_datacenters


def make_net(networks=1, hosts=3, **kwargs):
    topo, hosts_list = build_switched_cluster(networks, hosts)
    return Network(topo, **kwargs), hosts_list


class Collector:
    def __init__(self, net):
        self.net = net
        self.received = []

    def __call__(self, packet):
        self.received.append((self.net.now, packet))


class TestUnicast:
    def test_basic_delivery(self):
        net, hosts = make_net()
        sink = Collector(net)
        net.bind(hosts[1], "membership", sink)
        ok = net.unicast(hosts[0], hosts[1], kind="poll", payload={"q": 1}, size=64)
        net.run()
        assert ok
        assert len(sink.received) == 1
        assert sink.received[0][1].payload == {"q": 1}

    def test_delivery_latency(self):
        net, hosts = make_net()
        sink = Collector(net)
        net.bind(hosts[1], "membership", sink)
        net.unicast(hosts[0], hosts[1], kind="poll", payload=None, size=1)
        net.run()
        assert sink.received[0][0] == pytest.approx(
            net.topo.unicast_latency(hosts[0], hosts[1])
        )

    def test_ports_are_independent(self):
        net, hosts = make_net()
        a, b = Collector(net), Collector(net)
        net.bind(hosts[1], "membership", a)
        net.bind(hosts[1], "service", b)
        net.unicast(hosts[0], hosts[1], kind="x", payload=None, size=1, port="service")
        net.run()
        assert len(a.received) == 0 and len(b.received) == 1

    def test_unbound_port_drops(self):
        net, hosts = make_net()
        ok = net.unicast(hosts[0], hosts[1], kind="x", payload=None, size=1)
        net.run()
        assert ok  # scheduled, but silently dropped at the receiver

    def test_dead_sender_does_not_send(self):
        net, hosts = make_net()
        net.bind(hosts[1], "membership", Collector(net))
        net.topo.set_up(hosts[0], False)
        assert not net.unicast(hosts[0], hosts[1], kind="x", payload=None, size=1)

    def test_dead_receiver_drops(self):
        net, hosts = make_net()
        sink = Collector(net)
        net.bind(hosts[1], "membership", sink)
        net.unicast(hosts[0], hosts[1], kind="x", payload=None, size=1)
        net.crash_host(hosts[1])
        net.run()
        assert sink.received == []

    def test_unknown_destination_returns_false(self):
        net, hosts = make_net()
        assert not net.unicast(hosts[0], "no-such-host", kind="x", payload=None, size=1)

    def test_cross_dc_unicast_pays_wan_latency(self):
        topo, dca, dcb = build_two_datacenters(1, 2)
        net = Network(topo)
        sink = Collector(net)
        net.bind(dcb[0], "membership", sink)
        net.unicast(dca[0], dcb[0], kind="x", payload=None, size=1)
        net.run()
        assert sink.received[0][0] >= 0.045


class TestVirtualAddresses:
    def test_send_to_virtual_address(self):
        net, hosts = make_net()
        sink = Collector(net)
        net.bind(hosts[1], "membership", sink)
        net.transport.bind_address("vip-1", hosts[1])
        net.unicast(hosts[0], "vip-1", kind="x", payload=None, size=1)
        net.run()
        assert len(sink.received) == 1

    def test_failover_rebinds(self):
        net, hosts = make_net()
        s1, s2 = Collector(net), Collector(net)
        net.bind(hosts[1], "membership", s1)
        net.bind(hosts[2], "membership", s2)
        net.transport.bind_address("vip", hosts[1])
        net.unicast(hosts[0], "vip", kind="x", payload=None, size=1)
        net.run()
        net.transport.bind_address("vip", hosts[2])  # IP takeover
        net.unicast(hosts[0], "vip", kind="x", payload=None, size=1)
        net.run()
        assert len(s1.received) == 1 and len(s2.received) == 1

    def test_resolve(self):
        net, hosts = make_net()
        net.transport.bind_address("vip", hosts[0])
        assert net.transport.resolve("vip") == hosts[0]
        assert net.transport.resolve(hosts[1]) == hosts[1]
        assert net.transport.resolve("nothing") is None

    def test_release_address(self):
        net, hosts = make_net()
        net.transport.bind_address("vip", hosts[0])
        net.transport.release_address("vip")
        assert not net.unicast(hosts[1], "vip", kind="x", payload=None, size=1)


class TestRouteCache:
    def test_repeat_sends_cache_route(self):
        net, hosts = make_net()
        sink = Collector(net)
        net.bind(hosts[1], "membership", sink)
        for _ in range(3):
            net.unicast(hosts[0], hosts[1], kind="x", payload=None, size=1)
        net.run()
        assert len(sink.received) == 3
        assert (hosts[0], hosts[1]) in net.transport._routes

    def test_unroutable_destination_cached_negative(self):
        net, hosts = make_net()
        assert not net.unicast(hosts[0], "ghost", kind="x", payload=None, size=1)
        assert net.transport._routes[(hosts[0], "ghost")] is None

    def test_address_takeover_invalidates_cached_route(self):
        net, hosts = make_net()
        s1, s2 = Collector(net), Collector(net)
        net.bind(hosts[1], "membership", s1)
        net.bind(hosts[2], "membership", s2)
        net.transport.bind_address("vip", hosts[1])
        net.unicast(hosts[0], "vip", kind="x", payload=None, size=1)
        net.run()
        net.transport.bind_address("vip", hosts[2])
        net.unicast(hosts[0], "vip", kind="x", payload=None, size=1)
        net.run()
        assert len(s1.received) == 1 and len(s2.received) == 1

    def test_release_address_invalidates_cached_route(self):
        net, hosts = make_net()
        net.bind(hosts[1], "membership", Collector(net))
        net.transport.bind_address("vip", hosts[1])
        assert net.unicast(hosts[0], "vip", kind="x", payload=None, size=1)
        net.run()
        net.transport.release_address("vip")
        assert not net.unicast(hosts[0], "vip", kind="x", payload=None, size=1)

    def test_topology_change_invalidates_cached_route(self):
        net, hosts = make_net(networks=2, hosts=2)
        sink = Collector(net)
        net.bind(hosts[2], "membership", sink)
        assert net.unicast(hosts[0], hosts[2], kind="x", payload=None, size=1)
        net.run()
        net.fail_device("dc0-sw1")  # partitions hosts[2]'s segment
        assert not net.unicast(hosts[0], hosts[2], kind="x", payload=None, size=1)
        net.recover_device("dc0-sw1")
        assert net.unicast(hosts[0], hosts[2], kind="x", payload=None, size=1)
        net.run()
        assert len(sink.received) == 2


class TestBandwidthMeter:
    def test_totals(self):
        m = BandwidthMeter()
        m.record(1.0, "h1", "rx", "hb", 100)
        m.record(2.0, "h1", "rx", "hb", 100)
        m.record(2.0, "h2", "rx", "update", 50)
        assert m.bytes("h1", "rx") == 200
        assert m.bytes(direction="rx") == 250
        assert m.packets(direction="rx") == 3
        assert m.bytes_by_kind("hb") == 200

    def test_rates_with_explicit_duration(self):
        m = BandwidthMeter()
        m.record(0.0, "h1", "rx", "hb", 500)
        m.record(10.0, "h1", "rx", "hb", 500)
        assert m.aggregate_rate(duration=10.0) == pytest.approx(100.0)
        assert m.packet_rate("h1", duration=10.0) == pytest.approx(0.2)

    def test_rate_defaults_to_observed_span(self):
        m = BandwidthMeter()
        m.record(0.0, "h1", "rx", "hb", 100)
        m.record(4.0, "h1", "rx", "hb", 100)
        assert m.aggregate_rate() == pytest.approx(50.0)

    def test_zero_duration_rate_is_zero(self):
        m = BandwidthMeter()
        m.record(1.0, "h1", "rx", "hb", 100)
        assert m.aggregate_rate() == 0.0

    def test_per_host_rates(self):
        m = BandwidthMeter()
        m.record(0.0, "h1", "rx", "hb", 100)
        m.record(10.0, "h2", "rx", "hb", 300)
        rates = m.per_host_rates(duration=10.0)
        assert rates == {"h1": 10.0, "h2": 30.0}

    def test_bucketed_requires_series(self):
        m = BandwidthMeter(keep_series=False)
        with pytest.raises(RuntimeError):
            m.bucketed()

    def test_bucketed_series(self):
        m = BandwidthMeter(keep_series=True)
        m.record(0.2, "h", "rx", "hb", 10)
        m.record(0.7, "h", "rx", "hb", 10)
        m.record(1.5, "h", "rx", "hb", 30)
        assert m.bucketed(bucket=1.0) == [(0.0, 20), (1.0, 30)]

    def test_reset(self):
        m = BandwidthMeter()
        m.record(0.0, "h", "rx", "hb", 10)
        m.reset()
        assert m.bytes(direction="rx") == 0
        assert m.duration == 0.0


class TestLossGuards:
    """Mirror of the multicast loss-model guards on the unicast path."""

    def test_total_loss_is_legal_and_drops_everything(self):
        import random

        from repro.net.builders import build_switched_cluster
        from repro.net.transport import UnicastTransport
        from repro.sim.engine import Simulator

        topo, hosts = build_switched_cluster(1, 3)
        sim = Simulator()
        transport = UnicastTransport(
            sim, topo, BandwidthMeter(), loss_rate=1.0,
            loss_rng=random.Random(1),
        )
        from repro.net.packet import Packet

        received = []
        transport.bind(hosts[1], "membership", received.append)
        for _ in range(20):
            transport.send(
                Packet(src=hosts[0], kind="poll", payload=None, size=8,
                       dst=hosts[1])
            )
        sim.run()
        assert received == []

    def test_lossy_transport_without_rng_rejected(self):
        from repro.net.transport import UnicastTransport
        from repro.sim.engine import Simulator

        topo, _hosts = build_switched_cluster(1, 3)
        with pytest.raises(ValueError, match="loss_rng"):
            UnicastTransport(Simulator(), topo, BandwidthMeter(),
                             loss_rate=0.3, loss_rng=None)

    def test_out_of_range_loss_rate_rejected(self):
        from repro.net.transport import UnicastTransport
        from repro.sim.engine import Simulator

        topo, _hosts = build_switched_cluster(1, 3)
        for bad in (1.5, -0.1):
            with pytest.raises(ValueError, match="loss_rate"):
                UnicastTransport(Simulator(), topo, BandwidthMeter(),
                                 loss_rate=bad)
