"""Property tests: proxy summary chunking/merging and gateway statistics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.gateway import RequestStats
from repro.core import MembershipProxy, ServiceSummary


@st.composite
def summaries(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    entries = tuple(
        (f"svc{i:03d}", frozenset(draw(st.sets(st.integers(0, 8), max_size=4))))
        for i in range(n)
    )
    return ServiceSummary(entries)


class TestSummaryProperties:
    @given(summaries(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_chunks_partition_exactly(self, summary, max_entries):
        chunks = summary.chunks(max_entries)
        assert all(len(c) <= max_entries for c in chunks)
        reassembled = tuple(e for c in chunks for e in c.services)
        assert reassembled == summary.services
        assert len(chunks) >= 1

    @given(summaries(), st.integers(min_value=1, max_value=16), st.integers(0, 99))
    @settings(max_examples=200, deadline=None)
    def test_merge_of_chunks_reconstructs_summary(self, summary, max_entries, epoch):
        proxy = MembershipProxy.__new__(MembershipProxy)
        proxy.remote = {}
        proxy.network = type("N", (), {"now": 1.0})()
        chunks = summary.chunks(max_entries)
        for i, chunk in enumerate(chunks):
            proxy._merge_remote_summary(
                "dc", epoch, chunk.services, final=(i == len(chunks) - 1)
            )
        assert proxy.remote["dc"].summary == summary.as_dict()
        assert proxy.remote["dc"].last_heard == 1.0

    @given(summaries())
    @settings(max_examples=100, deadline=None)
    def test_provides_consistent_with_dict(self, summary):
        d = summary.as_dict()
        for name, parts in d.items():
            assert summary.provides(name, None)
            for p in parts:
                assert summary.provides(name, p)
        assert not summary.provides("no-such-service", None)


class TestRequestStatsProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=60, allow_nan=False),
                st.booleans(),
                st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_counts_add_up(self, records):
        stats = RequestStats()
        for t, ok, lat in records:
            stats.record(t, ok, lat)
        assert stats.completed == sum(1 for _t, ok, _l in records if ok)
        assert stats.failed == sum(1 for _t, ok, _l in records if not ok)
        assert sum(v for _s, v in stats.throughput_series()) == stats.completed
        assert sum(v for _s, v in stats.failure_series()) == stats.failed

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=60, allow_nan=False),
                st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_mean_response_time_bounds(self, records):
        stats = RequestStats()
        for t, lat in records:
            stats.record(t, True, lat)
        mean = stats.mean_response_time()
        lats = [lat for _t, lat in records]
        assert min(lats) - 1e-12 <= mean <= max(lats) + 1e-12

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=60, allow_nan=False),
                st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
            ),
            max_size=60,
        ),
        st.floats(min_value=0, max_value=30, allow_nan=False),
        st.floats(min_value=31, max_value=61, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_windowed_throughput_counts_window_only(self, records, lo, hi):
        stats = RequestStats()
        for t, lat in records:
            stats.record(t, True, lat)
        expected = sum(1 for t, _l in records if lo <= int(t) < hi)
        assert stats.throughput(lo, hi) * (hi - lo) == pytest_approx(expected)


def pytest_approx(x):
    import pytest

    return pytest.approx(x, rel=1e-9, abs=1e-9)
