"""Unit tests for group state and the bully election with suppression."""

from repro.cluster import NodeRecord
from repro.core import Decision, GroupState, Heartbeat, decide


def hb(node_id, level=0, is_leader=False, suppressed=False, backup=None, inc=1):
    return Heartbeat(
        record=NodeRecord(node_id, incarnation=inc),
        level=level,
        is_leader=is_leader,
        suppressed=suppressed,
        backup=backup,
    )


class TestGroupState:
    def test_note_heartbeat_new_peer(self):
        g = GroupState(0)
        assert g.note_heartbeat(hb("a"), now=1.0)
        assert not g.note_heartbeat(hb("a"), now=2.0)
        assert g.peers["a"].last_heard == 2.0

    def test_higher_incarnation_counts_as_new(self):
        g = GroupState(0)
        g.note_heartbeat(hb("a", inc=1), now=1.0)
        assert g.note_heartbeat(hb("a", inc=2), now=2.0)

    def test_purge_silent(self):
        g = GroupState(0)
        g.note_heartbeat(hb("a"), now=0.0)
        g.note_heartbeat(hb("b"), now=4.0)
        dead = g.purge_silent(now=5.5, timeout=5.0)
        assert [p.node_id for p in dead] == ["a"]
        assert "b" in g.peers

    def test_visible_leaders_sorted(self):
        g = GroupState(0)
        g.note_heartbeat(hb("z", is_leader=True), now=0.0)
        g.note_heartbeat(hb("a", is_leader=True), now=0.0)
        g.note_heartbeat(hb("m"), now=0.0)
        assert g.visible_leaders() == ["a", "z"]

    def test_current_leader_self_when_leading(self):
        g = GroupState(0)
        g.i_am_leader = True
        assert g.current_leader("me") == "me"

    def test_current_leader_lowest_visible(self):
        g = GroupState(0)
        g.note_heartbeat(hb("b", is_leader=True), now=0.0)
        assert g.current_leader("me") == "b"

    def test_current_leader_none(self):
        assert GroupState(0).current_leader("me") is None

    def test_contenders_below_excludes_suppressed_and_leaders(self):
        g = GroupState(0)
        g.note_heartbeat(hb("a", suppressed=True), now=0.0)
        g.note_heartbeat(hb("b"), now=0.0)
        g.note_heartbeat(hb("c", is_leader=True), now=0.0)
        g.note_heartbeat(hb("z"), now=0.0)
        assert g.contenders_below("m") == ["b"]

    def test_drop_peer(self):
        g = GroupState(0)
        g.note_heartbeat(hb("a"), now=0.0)
        assert g.drop_peer("a").node_id == "a"
        assert g.drop_peer("a") is None


class TestElection:
    DELAY = 2.5

    def test_leader_stays_without_conflict(self):
        g = GroupState(0)
        g.i_am_leader = True
        assert decide(g, "m", 10.0, self.DELAY) is Decision.STAY

    def test_leader_steps_down_for_lower_id_leader(self):
        g = GroupState(0)
        g.i_am_leader = True
        g.note_heartbeat(hb("a", is_leader=True), now=0.0)
        assert decide(g, "m", 10.0, self.DELAY) is Decision.STEP_DOWN

    def test_leader_keeps_post_against_higher_id_leader(self):
        g = GroupState(0)
        g.i_am_leader = True
        g.note_heartbeat(hb("z", is_leader=True), now=0.0)
        assert decide(g, "m", 10.0, self.DELAY) is Decision.STAY

    def test_visible_leader_suppresses(self):
        g = GroupState(0)
        g.note_heartbeat(hb("z", is_leader=True), now=0.0)
        assert decide(g, "a", 10.0, self.DELAY) is Decision.STAY
        assert g.suppressed
        assert g.leaderless_since is None

    def test_contention_requires_delay(self):
        g = GroupState(0)
        assert decide(g, "a", 0.0, self.DELAY) is Decision.STAY  # clock starts
        assert decide(g, "a", 1.0, self.DELAY) is Decision.STAY  # too early
        assert decide(g, "a", 2.5, self.DELAY) is Decision.BECOME_LEADER

    def test_lowest_id_wins(self):
        g = GroupState(0)
        g.note_heartbeat(hb("b"), now=0.0)
        decide(g, "a", 0.0, self.DELAY)
        assert decide(g, "a", 3.0, self.DELAY) is Decision.BECOME_LEADER

    def test_higher_id_waits_for_lower_contender(self):
        g = GroupState(0)
        g.note_heartbeat(hb("a"), now=0.0)
        decide(g, "b", 0.0, self.DELAY)
        assert decide(g, "b", 3.0, self.DELAY) is Decision.STAY

    def test_higher_id_wins_when_lower_is_suppressed(self):
        # Paper Fig. 4: E (lower id) sees leader D elsewhere, so F leads G'2.
        g = GroupState(2)
        g.note_heartbeat(hb("e", suppressed=True), now=0.0)
        decide(g, "f", 0.0, self.DELAY)
        assert decide(g, "f", 3.0, self.DELAY) is Decision.BECOME_LEADER

    def test_leader_disappearing_restarts_clock(self):
        g = GroupState(0)
        g.note_heartbeat(hb("z", is_leader=True), now=0.0)
        decide(g, "a", 1.0, self.DELAY)
        g.drop_peer("z")
        assert decide(g, "a", 10.0, self.DELAY) is Decision.STAY  # clock restarts
        assert decide(g, "a", 12.5, self.DELAY) is Decision.BECOME_LEADER

    def test_singleton_group_becomes_leader(self):
        g = GroupState(1)
        decide(g, "solo", 0.0, self.DELAY)
        assert decide(g, "solo", 2.5, self.DELAY) is Decision.BECOME_LEADER
