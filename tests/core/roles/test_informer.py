"""Informer role in isolation: sync client/server, tombstone machinery.

The sync protocol's wire face lives in the Receiver (``on_unicast``) but
its behavior — snapshots, merging, rate limiting, death certificates —
is the Informer's.  These tests drive both ends over the fake runtime.
"""

from repro.cluster.directory import NodeRecord
from repro.core.updates import UpdateOp
from repro.net.packet import Packet


def sync_req(src, snapshot):
    return Packet(src=src, kind="sync_req", payload={"snapshot": snapshot}, size=100, dst="n0")


def sync_resp(src, snapshot, seqs=None):
    payload = {"snapshot": snapshot, "seqs": seqs or {}}
    return Packet(src=src, kind="sync_resp", payload=payload, size=100, dst="n0")


def update_publishes(daemon):
    return [p for (_, _, kind, p, _) in daemon.runtime.published if kind == "update"]


class TestSyncClient:
    def test_request_carries_directory_minus_the_peer(self, daemon):
        daemon.add_peer("p1")
        assert daemon.ctx.informer.maybe_sync("p1") is True
        assert "p1" in daemon.ctx.pending_syncs
        (dst, kind, payload, _, port) = daemon.runtime.sent[-1]
        assert (dst, kind, port) == ("p1", "sync_req", "hmember")
        ids = {r.node_id for r in payload["snapshot"]}
        # Our own record travels; the peer's does not (it knows itself).
        assert daemon.node.node_id in ids
        assert "p1" not in ids

    def test_rate_limit_swallows_the_resend_but_keeps_it_pending(self, daemon):
        daemon.ctx.informer.maybe_sync("p1")
        sent_before = len(daemon.runtime.sent)
        assert daemon.ctx.informer.maybe_sync("p1") is False
        assert len(daemon.runtime.sent) == sent_before
        # The tracker keeps retrying until a response lands.
        assert "p1" in daemon.ctx.pending_syncs
        # After the interval the retry goes through.
        daemon.runtime.advance(daemon.config.min_sync_interval)
        assert daemon.ctx.informer.maybe_sync("p1") is True

    def test_stopped_node_never_syncs(self, daemon):
        daemon.node.running = False
        assert daemon.ctx.informer.maybe_sync("p1") is False
        assert daemon.runtime.sent == []
        assert daemon.ctx.pending_syncs == set()


class TestSyncServer:
    def test_request_is_answered_with_snapshot_and_seqs(self, daemon):
        far = NodeRecord("far1", 2)
        daemon.ctx.receiver.on_unicast(sync_req("p1", [far]))
        # The request's payload was merged (bidirectional exchange)...
        assert "far1" in daemon.directory
        assert daemon.node.member_up == ["far1"]
        (dst, kind, payload, _, port) = daemon.runtime.sent[-1]
        assert (dst, kind, port) == ("p1", "sync_resp", "hmember")
        ids = {r.node_id for r in payload["snapshot"]}
        assert daemon.node.node_id in ids and "far1" in ids and "p1" not in ids
        # Stream positions let the client mark itself caught-up.
        assert set(payload["seqs"]) == {0}

    def test_stopped_node_does_not_serve(self, daemon):
        daemon.node.running = False
        daemon.ctx.receiver.on_unicast(sync_req("p1", []))
        assert daemon.runtime.sent == []

    def test_response_clears_pending_and_prunes_dead_vouchees(self, daemon):
        # "leader" vouched for old1; its authoritative snapshot no longer
        # lists old1, so the entry must go (we missed the remove-update).
        daemon.ctx.pending_syncs.add("leader")
        daemon.directory.upsert(NodeRecord("old1", 1), 0.0, relayed_by="leader")
        fresh = NodeRecord("new1", 1)
        daemon.ctx.receiver.on_unicast(sync_resp("leader", [fresh]))
        assert daemon.ctx.pending_syncs == set()
        assert "old1" not in daemon.directory
        assert ("old1", "sync_prune") in daemon.node.member_down
        assert "new1" in daemon.directory


class TestTombstones:
    def test_certificate_refuses_stale_incarnations(self, daemon):
        daemon.ctx.informer.bury("ghost", 3)
        absorbed = daemon.ctx.informer.absorb_record(
            NodeRecord("ghost", 2), via="p1", now=daemon.runtime.now
        )
        assert absorbed is False
        assert "ghost" not in daemon.directory

    def test_refused_record_triggers_refutation_and_repull(self, daemon):
        daemon.ctx.informer.bury("ghost", 3)
        daemon.ctx.informer.absorb_record(
            NodeRecord("ghost", 3), via="p1", now=daemon.runtime.now
        )
        # Anti-entropy: the removal is pushed back at whoever is stale...
        msgs = update_publishes(daemon)
        assert any(
            op.op == "remove" and op.node_id == "ghost" and op.incarnation == 3
            for m in msgs
            for op in m.ops
        )
        # ...and a post-quarantine re-pull from the source is scheduled.
        (backstop,) = daemon.runtime.oneshots
        assert backstop.args == ("p1",)
        daemon.runtime.advance(
            daemon.config.tombstone_quarantine + daemon.config.heartbeat_period
        )
        kinds = [(dst, kind) for (dst, kind, _, _, _) in daemon.runtime.sent]
        assert ("p1", "sync_req") in kinds

    def test_refutation_storm_is_rate_limited(self, daemon):
        daemon.ctx.informer.bury("ghost", 3)
        now = daemon.runtime.now
        daemon.ctx.informer.absorb_record(NodeRecord("ghost", 3), via="p1", now=now)
        published_before = len(update_publishes(daemon))
        daemon.ctx.informer.absorb_record(NodeRecord("ghost", 3), via="p2", now=now)
        assert len(update_publishes(daemon)) == published_before

    def test_higher_incarnation_beats_the_certificate(self, daemon):
        # A genuinely restarted node announces a higher incarnation; the
        # certificate must not block its return.
        daemon.ctx.informer.bury("ghost", 3)
        absorbed = daemon.ctx.informer.absorb_record(
            NodeRecord("ghost", 4), via="p1", now=daemon.runtime.now
        )
        assert absorbed is True
        assert "ghost" in daemon.directory
        assert daemon.node.member_up == ["ghost"]

    def test_certificates_expire_after_quarantine(self, daemon):
        daemon.ctx.informer.bury("ghost", 3)
        daemon.runtime.advance(daemon.config.tombstone_quarantine + 0.1)
        assert not daemon.ctx.informer.tombstoned("ghost", 3, daemon.runtime.now)
        assert "ghost" not in daemon.ctx.tombstones


class TestSelfDefense:
    def test_rumor_of_own_death_is_refuted(self, daemon):
        me = daemon.node.node_id
        daemon.ctx.informer.apply_ops(
            [UpdateOp("remove", me, daemon.node.incarnation)], via="p1"
        )
        assert daemon.node.refutations == 1
        record = daemon.directory.get(me)
        assert record is not None and record.incarnation == 2
        # The higher incarnation is announced so the rumor dies out.
        assert any(
            op.op == "add" and op.node_id == me and op.incarnation == 2
            for m in update_publishes(daemon)
            for op in m.ops
        )

    def test_stale_death_rumor_is_ignored(self, daemon):
        daemon.node.incarnation = 5
        daemon.ctx.informer.apply_ops([UpdateOp("remove", daemon.node.node_id, 2)], via="p1")
        assert daemon.node.refutations == 0
