"""Tracker role in isolation: purge, vouch cascade, death handling.

These run one daemon's roles over the fake runtime — no simulator, no
network, no other nodes.  The scenarios poke exactly the state a real
run would build (group peers, directory entries, vouched attributions)
and assert on the tracker's decisions alone.
"""

from repro.cluster.directory import NodeRecord


class TestPurge:
    def test_silent_peer_is_purged_and_announced(self, daemon):
        daemon.ctx.groups[0].i_am_leader = True  # relay point: must originate
        daemon.add_peer("p1", last_heard=0.0)
        daemon.runtime.advance(daemon.config.level_timeout(0) + 1.0)
        daemon.ctx.tracker.check_tick()
        assert "p1" not in daemon.directory
        assert ("p1", "timeout") in daemon.node.member_down
        # The removal rode an update multicast (relay point duty)...
        kinds = [kind for (_, _, kind, _, _) in daemon.runtime.published]
        assert "update" in kinds
        # ...and left a death certificate guarding the incarnation.
        assert daemon.ctx.tombstones["p1"][0] == 1

    def test_fresh_peer_survives_the_tick(self, daemon):
        daemon.add_peer("p1")
        daemon.runtime.advance(1.0)
        daemon.ctx.tracker.check_tick()
        assert "p1" in daemon.directory
        assert daemon.node.member_down == []

    def test_plain_member_purges_silently(self, daemon):
        # Not a relay point: the entry goes, but no remove rumor is
        # multicast (that is the leader's job).
        daemon.add_peer("p1", last_heard=0.0)
        published_before = len(daemon.runtime.published)
        daemon.runtime.advance(daemon.config.level_timeout(0) + 1.0)
        daemon.ctx.tracker.check_tick()
        assert "p1" not in daemon.directory
        assert len(daemon.runtime.published) == published_before

    def test_pending_syncs_retried_each_tick(self, daemon):
        daemon.ctx.pending_syncs.add("p9")
        daemon.ctx.tracker.check_tick()
        dsts = [dst for (dst, kind, _, _, _) in daemon.runtime.sent if kind == "sync_req"]
        assert dsts == ["p9"]
        # Still pending until a sync_resp lands.
        assert "p9" in daemon.ctx.pending_syncs


class TestVouchCascade:
    def test_dead_relayer_takes_its_entries_down(self, daemon):
        daemon.ctx.groups[0].i_am_leader = True
        daemon.add_peer("relay", last_heard=0.0)
        # Two entries vouched by the relay (second-hand knowledge).
        now = daemon.runtime.now
        daemon.directory.upsert(NodeRecord("far1", 1), now, relayed_by="relay")
        daemon.directory.upsert(NodeRecord("far2", 1), now, relayed_by="relay")
        daemon.runtime.advance(daemon.config.level_timeout(0) + 1.0)
        daemon.ctx.tracker.check_tick()
        # The paper's timeout protocol: "membership information that is
        # relayed by the dead node is also timeouted."
        assert "relay" not in daemon.directory
        assert "far1" not in daemon.directory
        assert "far2" not in daemon.directory
        reasons = dict(daemon.node.member_down)
        assert reasons["far1"] == "relayer_died"
        # Every casualty gets a death certificate.
        assert set(daemon.ctx.tombstones) == {"relay", "far1", "far2"}

    def test_vouched_entry_survives_while_relayer_lives(self, daemon):
        daemon.add_peer("relay")
        daemon.directory.upsert(
            NodeRecord("far1", 1), daemon.runtime.now, relayed_by="relay"
        )
        daemon.runtime.advance(2.0)
        daemon.ctx.tracker.check_tick()
        assert "far1" in daemon.directory

    def test_stale_relayed_backstop_purges_unvouched_entry(self, daemon):
        # Nobody vouches for far1 for a long time: the backstop reaps it
        # even though its relayer was never declared dead.
        daemon.directory.upsert(NodeRecord("far1", 3), 0.0, relayed_by="ghost")
        daemon.runtime.advance(daemon.config.relayed_timeout + 1.0)
        daemon.ctx.tracker.check_tick()
        assert "far1" not in daemon.directory
        assert ("far1", "relayed_timeout") in daemon.node.member_down
        # The certificate carries the incarnation the remove op guards on.
        assert daemon.ctx.tombstones["far1"][0] == 3


class TestDeathHandling:
    def test_backup_takeover_is_immediate(self, daemon):
        me = daemon.node.node_id
        daemon.add_peer("boss", is_leader=True, last_heard=0.0, backup=me)
        daemon.add_peer("other", last_heard=0.0)
        daemon.runtime.advance(daemon.config.level_timeout(0) + 1.0)
        daemon.ctx.tracker.check_tick()
        # Backup fast path: no election delay, we fly the flag now.
        assert daemon.ctx.groups[0].i_am_leader
        assert any(kind == "leader_elected" for (_, kind, _) in daemon.runtime.emitted)

    def test_abdication_is_not_death(self, daemon):
        # Peer silent at level 1 but freshly heard at level 0: it stepped
        # down from leadership, it did not die — the directory entry stays.
        daemon.ctx.participate(1)
        daemon.add_peer("peer", level=0)  # fresh at level 0
        stale = daemon.runtime.now - daemon.config.level_timeout(1) - 1.0
        daemon.add_peer("peer", level=1, last_heard=stale)
        peer = daemon.ctx.groups[1].peers["peer"]
        daemon.ctx.tracker.handle_peer_death(1, peer)
        assert "peer" in daemon.directory
        assert daemon.node.member_down == []

    def test_death_forgets_update_streams_and_pending_sync(self, daemon):
        daemon.add_peer("p1", last_heard=0.0)
        daemon.ctx.pending_syncs.add("p1")
        daemon.runtime.advance(daemon.config.level_timeout(0) + 1.0)
        peer = daemon.ctx.groups[0].purge_silent(
            daemon.runtime.now, daemon.config.level_timeout(0)
        )[0]
        daemon.ctx.tracker.handle_peer_death(0, peer)
        # No retry loop for a dead peer, no stale dedup state.
        assert "p1" not in daemon.ctx.pending_syncs
        assert "p1" not in daemon.directory
