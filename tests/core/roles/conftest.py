"""A fake :class:`NodeRuntime` and daemon harness for role unit tests.

Before the role split, exercising tracker purges or the sync server meant
standing up a whole simulated network.  Now each role talks only to the
runtime ports, so these tests drive one daemon's roles directly: the fake
runtime records every publish/send/timer/trace call and advances a manual
clock — no simulator, no fabrics, no other nodes.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

import pytest

from repro.cluster.directory import Directory, NodeRecord
from repro.core.config import HierarchicalConfig
from repro.core.roles import (
    Announcer,
    Contender,
    Informer,
    NodeContext,
    Receiver,
    Tracker,
)
from repro.core.updates import UpdateManager
from repro.obs.wiring import NOOP, Instruments
from repro.runtime.ports import NodeRuntime, PacketHandler, TimerHandle


class FakeTimer:
    def __init__(self, delay: float, fn: Callable, args: tuple, epoch: int) -> None:
        self.delay = delay
        self.fn = fn
        self.args = args
        self.epoch = epoch
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class FakeRuntime(NodeRuntime):
    """In-memory runtime: manual clock, recorded effects, firable timers."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.time = 0.0
        self._active = True
        self._epoch = 1
        self.oneshots: List[FakeTimer] = []
        self.recurring: List[FakeTimer] = []
        self.published: List[Tuple[str, int, str, object, int]] = []
        self.sent: List[Tuple[str, str, object, int, str]] = []
        self.subscriptions: dict = {}
        self.bound: dict = {}
        self.emitted: List[Tuple[float, str, dict]] = []

    # Clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.time

    def advance(self, dt: float) -> None:
        """Move the clock; due one-shots fire in scheduling order."""
        self.time += dt
        due = [t for t in self.oneshots if not t.cancelled and t.delay <= self.time]
        for timer in due:
            self.oneshots.remove(timer)
            if self._active and self._epoch == timer.epoch:
                timer.fn(*timer.args)

    # Lifecycle --------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def activate(self) -> None:
        self._active = True
        self._epoch += 1

    def deactivate(self) -> None:
        self._active = False
        self.oneshots.clear()
        for timer in self.recurring:
            timer.cancel()
        self.recurring.clear()

    def bump_epoch(self) -> None:
        self._epoch += 1

    @property
    def live_timers(self) -> int:
        return sum(1 for t in self.oneshots if not t.cancelled) + sum(
            1 for t in self.recurring if not t.cancelled
        )

    # Timers -----------------------------------------------------------
    def call_once(self, delay: float, fn: Callable, *args: object) -> TimerHandle:
        timer = FakeTimer(self.time + delay, fn, args, self._epoch)
        self.oneshots.append(timer)
        return timer

    def call_every(
        self,
        period: float,
        fn: Callable,
        *args: object,
        first_delay: Optional[float] = None,
    ) -> TimerHandle:
        timer = FakeTimer(period, fn, args, self._epoch)
        self.recurring.append(timer)
        return timer

    # Channels ---------------------------------------------------------
    def subscribe(self, channel: str, handler: PacketHandler) -> None:
        self.subscriptions[channel] = handler

    def unsubscribe(self, channel: str) -> None:
        self.subscriptions.pop(channel, None)

    def publish(
        self, channel: str, ttl: int, kind: str, payload: object, size: int
    ) -> bool:
        self.published.append((channel, ttl, kind, payload, size))
        return True

    # Unicast ----------------------------------------------------------
    def bind(self, port: str, handler: PacketHandler) -> None:
        self.bound[port] = handler

    def unbind(self, port: str) -> None:
        self.bound.pop(port, None)

    def send(
        self, dst: str, kind: str, payload: object, size: int, port: str = "membership"
    ) -> bool:
        self.sent.append((dst, kind, payload, size, port))
        return True

    # Observability ----------------------------------------------------
    @property
    def obs(self) -> Instruments:
        return NOOP

    def emit(self, kind: str, **data: object) -> None:
        self.emitted.append((self.time, kind, data))

    # Randomness -------------------------------------------------------
    def rng_stream(self, name: str) -> random.Random:
        return random.Random(hash(name) & 0xFFFF)


class FakeNode:
    """Minimal :class:`MemberHost`: just enough facade for the roles."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.incarnation = 1
        self.running = True
        self.use_fast_path = True
        self.member_up: List[str] = []
        self.member_down: List[Tuple[str, str]] = []
        self.refutations = 0
        self.ctx: NodeContext  # set by build_daemon

    def self_record(self) -> NodeRecord:
        return NodeRecord(node_id=self.node_id, incarnation=self.incarnation)

    def refute_death(self) -> None:
        self.incarnation += 1
        self.refutations += 1

    def _maybe_sync(self, peer: str) -> bool:
        # Mirrors the facade: the single seam for internal sync requests.
        return self.ctx.informer.maybe_sync(peer)

    def _emit_member_up(self, target: str) -> None:
        self.member_up.append(target)

    def _emit_member_down(self, target: str, reason: str = "timeout") -> None:
        self.member_down.append((target, reason))


class Daemon:
    """One node's wired roles over a fake runtime (no simulator)."""

    def __init__(self, node_id: str = "n0") -> None:
        self.node = FakeNode(node_id)
        self.runtime = FakeRuntime(node_id)
        self.config = HierarchicalConfig()
        self.directory = Directory(node_id)
        self.ctx = NodeContext(
            node=self.node,
            runtime=self.runtime,
            config=self.config,
            directory=self.directory,
            rng=random.Random(42),
            updates=UpdateManager(node_id, self.config.piggyback_depth),
        )
        self.ctx.wire(
            Announcer(self.ctx),
            Receiver(self.ctx),
            Tracker(self.ctx),
            Informer(self.ctx),
            Contender(self.ctx),
        )
        self.node.ctx = self.ctx
        self.directory.upsert(self.node.self_record(), self.runtime.now)
        self.ctx.participate(0)

    # Conveniences ------------------------------------------------------
    def add_peer(
        self,
        node_id: str,
        level: int = 0,
        is_leader: bool = False,
        last_heard: Optional[float] = None,
        incarnation: int = 1,
        backup: Optional[str] = None,
    ) -> NodeRecord:
        """Insert a direct peer (group entry + directory record)."""
        from repro.core.groups import PeerState

        now = self.runtime.now if last_heard is None else last_heard
        record = NodeRecord(node_id=node_id, incarnation=incarnation)
        if level not in self.ctx.groups:
            self.ctx.participate(level)
        group = self.ctx.groups[level]
        group.peers[node_id] = PeerState(
            node_id=node_id,
            last_heard=now,
            is_leader=is_leader,
            incarnation=incarnation,
            backup=backup,
        )
        if is_leader:
            group._leader_ids.add(node_id)
            group._leaders_sorted = None
        self.directory.upsert(record, now)
        return record


@pytest.fixture
def daemon() -> Daemon:
    return Daemon()
