"""Tests for hierarchy introspection helpers."""

import pytest

from repro.core import (
    HierarchicalNode,
    hierarchy_invariant_errors,
    hierarchy_snapshot,
    render_hierarchy,
)
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


@pytest.fixture(scope="module")
def cluster():
    topo, hosts = build_switched_cluster(3, 4)
    net = Network(topo, seed=5)
    nodes = deploy(HierarchicalNode, net, hosts)
    net.run(until=14.0)
    return net, hosts, nodes


class TestSnapshot:
    def test_level0_groups_match_networks(self, cluster):
        net, hosts, nodes = cluster
        groups = [g for g in hierarchy_snapshot(nodes) if g.level == 0]
        assert len(groups) == 3
        for g in groups:
            assert len(g.members) == 4
            assert g.leader == min(g.members)

    def test_level1_group_contains_level0_leaders(self, cluster):
        net, hosts, nodes = cluster
        snap = hierarchy_snapshot(nodes)
        l0_leaders = {g.leader for g in snap if g.level == 0}
        l1 = [g for g in snap if g.level == 1]
        assert len(l1) == 1
        assert set(l1[0].members) == l0_leaders

    def test_groups_sorted(self, cluster):
        net, hosts, nodes = cluster
        snap = hierarchy_snapshot(nodes)
        assert snap == sorted(snap, key=lambda g: (g.level, g.leader))

    def test_stopped_nodes_excluded(self, cluster):
        net, hosts, nodes = cluster
        # Build a copy-dict with one stopped node object (do not mutate the
        # module-scoped cluster's real state).
        import copy

        fake = dict(nodes)

        class Stopped:
            running = False

        fake[hosts[0]] = Stopped()
        snap = hierarchy_snapshot(fake)
        assert all(hosts[0] not in g.members for g in snap)


class TestRender:
    def test_render_contains_all_levels(self, cluster):
        net, hosts, nodes = cluster
        text = render_hierarchy(nodes)
        assert "L0 [" in text and "L1 [" in text
        assert text.count("L0 [") == 3

    def test_alone_marker_for_singletons(self, cluster):
        net, hosts, nodes = cluster
        text = render_hierarchy(nodes)
        # The chain above level 1 is a single node per level.
        assert "(alone)" in text


class TestInvariants:
    def test_healthy_cluster_has_no_errors(self, cluster):
        net, hosts, nodes = cluster
        assert hierarchy_invariant_errors(nodes) == []

    def test_detects_mutual_leaders(self):
        topo, hosts = build_switched_cluster(1, 3)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        # Corrupt: make a follower believe it leads while seeing the leader.
        follower = nodes[hosts[2]]
        follower._groups[0].i_am_leader = True
        errors = hierarchy_invariant_errors(nodes)
        assert any("sees leaders" in e for e in errors)

    def test_detects_orphan_participation(self):
        topo, hosts = build_switched_cluster(1, 3)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        follower = nodes[hosts[2]]
        from repro.core.groups import GroupState

        follower._groups[1] = GroupState(1)  # joined L1 without leading L0
        errors = hierarchy_invariant_errors(nodes)
        assert any("without leading" in e for e in errors)
