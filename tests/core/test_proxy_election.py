"""Focused tests of proxy-group election and leader duties."""

import pytest

from repro.core import HierarchicalNode, MembershipProxy, ProxyConfig
from repro.net import Network
from repro.net.builders import build_two_datacenters
from repro.protocols import deploy

ADDRS = {"dcA": "vip-A", "dcB": "vip-B"}


def make_proxies(per_dc=3, seed=1):
    topo, dca, dcb = build_two_datacenters(1, 5)
    net = Network(topo, seed=seed)
    nodes = {}
    nodes.update(deploy(HierarchicalNode, net, dca))
    nodes.update(deploy(HierarchicalNode, net, dcb))
    proxies = []
    for dc, hostlist in (("dcA", dca), ("dcB", dcb)):
        for h in hostlist[:per_dc]:
            p = MembershipProxy(net, h, dc, ADDRS[dc], ADDRS, nodes[h])
            p.start()
            proxies.append(p)
    return net, nodes, proxies


class TestProxyElection:
    def test_lowest_id_becomes_leader(self):
        net, nodes, proxies = make_proxies()
        net.run(until=12.0)
        for dc in ("dcA", "dcB"):
            group = [p for p in proxies if p.dc == dc]
            leaders = [p for p in group if p.is_leader]
            assert len(leaders) == 1
            assert leaders[0].host == min(p.host for p in group)

    def test_backup_fast_takeover(self):
        net, nodes, proxies = make_proxies()
        net.run(until=12.0)
        leader = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        backup_host = leader.group.my_backup
        assert backup_host is not None
        leader.stop()
        nodes[leader.host].stop()
        net.crash_host(leader.host)
        net.run(until=24.0)
        new_leader = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        # The designated backup took over (fast path, no election delay).
        assert new_leader.host == backup_host
        assert net.transport.address_owner("vip-A") == backup_host

    def test_restarted_old_leader_does_not_displace_incumbent(self):
        """Stability: "If there is already a group leader, a node will not
        participate [in] the leader election" — a rejoining lower-ID proxy
        suppresses itself instead of causing leadership churn."""
        net, nodes, proxies = make_proxies()
        net.run(until=12.0)
        leader = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        old_host = leader.host
        leader.stop()
        nodes[old_host].stop()
        net.crash_host(old_host)
        net.run(until=30.0)
        incumbent = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        net.recover_host(old_host)
        nodes[old_host].start()
        leader.start()
        net.run(until=55.0)
        leaders = [p for p in proxies if p.dc == "dcA" and p.is_leader]
        assert len(leaders) == 1
        assert leaders[0].host == incumbent.host  # no churn
        assert not leader.is_leader
        assert leader.group.suppressed
        assert net.transport.address_owner("vip-A") == incumbent.host

    def test_single_proxy_dc_leads_itself(self):
        net, nodes, proxies = make_proxies(per_dc=1)
        net.run(until=12.0)
        assert all(p.is_leader for p in proxies)

    def test_follower_does_not_own_address(self):
        net, nodes, proxies = make_proxies()
        net.run(until=12.0)
        for p in proxies:
            if not p.is_leader:
                assert net.transport.address_owner(p.external_addr) != p.host

    def test_config_defaults(self):
        cfg = ProxyConfig()
        assert cfg.summary_heartbeat_period == 1.0
        assert cfg.max_entries_per_packet == 64
