"""Tests for the MService / MClient library API (paper Section 5)."""

import pytest

from repro.core import MClient, MService
from repro.net import Network
from repro.net.builders import build_switched_cluster

CONFIG = """
*SYSTEM
SHM_KEY = 999
MAX_TTL = 4
MCAST_ADDR = 239.255.0.2
MCAST_PORT = 10050
MCAST_FREQ = 1
MAX_LOSS = 5

*SERVICE
[HTTP]
    PARTITION = 0
    Port = 8080
[Cache]
    PARTITION = 2
"""


def make_deployment(n=4):
    topo, hosts = build_switched_cluster(1, n)
    net = Network(topo, seed=1)
    services = {}
    for h in hosts:
        ms = MService(net, h, configuration=CONFIG)
        ms.run()
        services[h] = ms
    return net, hosts, services


class TestMService:
    def test_config_file_applies(self):
        net, hosts, services = make_deployment(2)
        ms = services[hosts[0]]
        assert ms.config.shm_key == 999
        assert ms.config.max_ttl == 4

    def test_services_from_config_published(self):
        net, hosts, services = make_deployment(3)
        net.run(until=10.0)
        client = MClient(net, hosts[2], 999)
        machines = client.lookup_service("HTTP", "0")
        assert [m.node_id for m in machines] == sorted(hosts)
        assert machines[0].get("Port") is None  # params are spec params, not attrs

    def test_defaults_when_no_configuration(self):
        topo, hosts = build_switched_cluster(1, 2)
        net = Network(topo, seed=1)
        ms = MService(net, hosts[0])
        assert ms.config.shm_key == 999  # library default

    def test_control_updates_parameters(self):
        topo, hosts = build_switched_cluster(1, 2)
        net = Network(topo, seed=1)
        ms = MService(net, hosts[0])
        ms.control("max_loss", 3)
        assert ms.config.max_loss == 3
        assert ms.config.fail_timeout == 3.0

    def test_control_rejects_unknown_command(self):
        topo, hosts = build_switched_cluster(1, 2)
        net = Network(topo, seed=1)
        ms = MService(net, hosts[0])
        with pytest.raises(ValueError):
            ms.control("bogus", 1)

    def test_register_service_visible_cluster_wide(self):
        net, hosts, services = make_deployment(3)
        net.run(until=10.0)
        services[hosts[0]].register_service("Retriever", "1-3")
        net.run(until=11.0)
        client = MClient(net, hosts[2], 999)
        machines = client.lookup_service("Retriever", "2")
        assert [m.node_id for m in machines] == [hosts[0]]

    def test_update_and_delete_value(self):
        net, hosts, services = make_deployment(2)
        net.run(until=10.0)
        services[hosts[0]].update_value("Port", "9090")
        net.run(until=11.0)
        client = MClient(net, hosts[1], 999)
        m = [x for x in client.lookup_service("HTTP") if x.node_id == hosts[0]][0]
        assert m.get("Port") == "9090"
        services[hosts[0]].delete_value("Port")
        net.run(until=12.0)
        m = [x for x in client.lookup_service("HTTP") if x.node_id == hosts[0]][0]
        assert m.get("Port") is None

    def test_run_is_idempotent(self):
        net, hosts, services = make_deployment(2)
        services[hosts[0]].run()
        services[hosts[0]].run()
        net.run(until=5.0)

    def test_stop_removes_shm(self):
        net, hosts, services = make_deployment(2)
        services[hosts[0]].stop()
        with pytest.raises(KeyError):
            MClient(net, hosts[0], 999)

    def test_graceful_leave_through_api(self):
        net, hosts, services = make_deployment(3)
        net.run(until=10.0)
        services[hosts[1]].leave()
        net.run(until=11.0)  # no 5 s detection wait
        client = MClient(net, hosts[0], 999)
        assert hosts[1] not in client.members()
        with pytest.raises(KeyError):
            MClient(net, hosts[1], 999)


class TestMClient:
    def test_requires_local_daemon(self):
        net, hosts, services = make_deployment(2)
        with pytest.raises(KeyError):
            MClient(net, hosts[0], 12345)  # wrong key

    def test_lookup_regex_service(self):
        net, hosts, services = make_deployment(2)
        net.run(until=10.0)
        client = MClient(net, hosts[0], 999)
        machines = client.lookup_service("HTTP|Cache")
        assert len(machines) == 2  # both hosts provide both services

    def test_lookup_partition_regex(self):
        net, hosts, services = make_deployment(2)
        net.run(until=10.0)
        client = MClient(net, hosts[0], 999)
        assert client.lookup_service("Cache", "2")
        assert client.lookup_service("Cache", "3") == []

    def test_machine_attrs_include_hardware(self):
        net, hosts, services = make_deployment(2)
        net.run(until=10.0)
        client = MClient(net, hosts[0], 999)
        m = client.lookup_service("HTTP")[0]
        assert m.get("cpu_model") == "Pentium III"
        assert m.partitions == (0, 2)

    def test_members(self):
        net, hosts, services = make_deployment(3)
        net.run(until=10.0)
        client = MClient(net, hosts[0], 999)
        assert client.members() == sorted(hosts)

    def test_client_sees_failures(self):
        net, hosts, services = make_deployment(3)
        net.run(until=10.0)
        services[hosts[1]].stop()
        net.crash_host(hosts[1])
        net.run(until=25.0)
        client = MClient(net, hosts[0], 999)
        assert hosts[1] not in client.members()
        assert all(m.node_id != hosts[1] for m in client.lookup_service("HTTP"))
