"""Formation on randomized topologies: the protocol adapts to anything.

Hypothesis generates random router trees with hosts hung off arbitrary
routers (so group sizes, tree depths and TTL distances all vary), runs the
hierarchical protocol, and checks the paper's guarantees: complete views,
a consistent hierarchy, and failure convergence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HierarchicalConfig,
    HierarchicalNode,
    hierarchy_invariant_errors,
)
from repro.net import Network, Topology
from repro.protocols import deploy


@st.composite
def random_cluster(draw):
    """A random connected topology plus a seed."""
    t = Topology()
    n_routers = draw(st.integers(min_value=1, max_value=4))
    for i in range(n_routers):
        t.add_router(f"r{i}")
        if i > 0:
            parent = draw(st.integers(min_value=0, max_value=i - 1))
            t.add_link(f"r{i}", f"r{parent}", latency=0.0002)
    n_segments = draw(st.integers(min_value=1, max_value=4))
    hosts = []
    for s in range(n_segments):
        r = draw(st.integers(min_value=0, max_value=n_routers - 1))
        t.add_switch(f"s{s}")
        t.add_link(f"s{s}", f"r{r}", latency=0.0002)
        for h in range(draw(st.integers(min_value=1, max_value=4))):
            host = f"s{s}h{h}"
            t.add_host(host)
            t.add_link(host, f"s{s}", latency=0.0001)
            hosts.append(host)
    seed = draw(st.integers(min_value=0, max_value=100))
    return t, hosts, seed


class TestRandomTopologies:
    @given(random_cluster())
    @settings(max_examples=15, deadline=None)
    def test_formation_completes_anywhere(self, case):
        topo, hosts, seed = case
        # TTL budget covering the worst random tree (4 routers deep x 2).
        cfg = HierarchicalConfig(max_ttl=9)
        net = Network(topo, seed=seed)
        nodes = deploy(HierarchicalNode, net, hosts, config=cfg)
        # Deep chains elect level by level: give them time proportional to
        # the TTL budget.
        net.run(until=12.0 + 5.0 * cfg.max_level)
        for h, node in nodes.items():
            assert node.view() == sorted(hosts), (h, node.view())
        assert hierarchy_invariant_errors(nodes) == []

    @given(random_cluster())
    @settings(max_examples=8, deadline=None)
    def test_failure_converges_anywhere(self, case):
        topo, hosts, seed = case
        if len(hosts) < 2:
            return
        cfg = HierarchicalConfig(max_ttl=9)
        net = Network(topo, seed=seed)
        nodes = deploy(HierarchicalNode, net, hosts, config=cfg)
        warm = 12.0 + 5.0 * cfg.max_level
        net.run(until=warm)
        victim = hosts[seed % len(hosts)]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=warm + 60.0)
        expect = sorted(set(hosts) - {victim})
        for h in expect:
            assert nodes[h].view() == expect, (h, nodes[h].view())
