"""Property-based tests for the update stream (hypothesis).

The key invariant: for ANY pattern of packet losses, a receiver applies
every update **at most once**, in stream order among those it applies; and
whenever gaps never exceed the piggyback depth, it applies ALL of them
without ever needing a sync.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NodeRecord
from repro.core import UpdateManager, UpdateOp


def add_op(i):
    return UpdateOp("add", f"n{i}", 1, NodeRecord(f"n{i}", incarnation=1))


@st.composite
def stream_with_losses(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    depth = draw(st.integers(min_value=0, max_value=5))
    lost = draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
    return n, depth, lost


class TestStreamProperties:
    @given(stream_with_losses())
    @settings(max_examples=300, deadline=None)
    def test_at_most_once_and_ordered(self, case):
        n, depth, lost = case
        sender = UpdateManager("s", piggyback_depth=depth)
        receiver = UpdateManager("r", piggyback_depth=depth)
        applied = []
        for i in range(n):
            msg = sender.build(0, [add_op(i)])
            if i in lost:
                continue
            out = receiver.receive(msg)
            for _uid, _origin, ops in out.apply:
                applied.append(ops[0].node_id)
        # No duplicates.
        assert len(applied) == len(set(applied))
        # Order preserved (subsequence of the send order).
        indices = [int(x[1:]) for x in applied]
        assert indices == sorted(indices)

    @given(stream_with_losses())
    @settings(max_examples=300, deadline=None)
    def test_bounded_gaps_recover_everything(self, case):
        n, depth, lost = case
        # Constrain losses to runs of at most `depth` consecutive packets,
        # and never lose the final packet (nothing after it to recover it).
        lost = {
            i
            for i in lost
            if i != n - 1
        }
        run = 0
        bounded = set()
        for i in range(n):
            if i in lost and run < depth:
                bounded.add(i)
                run += 1
            else:
                run = 0
        sender = UpdateManager("s", piggyback_depth=depth)
        receiver = UpdateManager("r", piggyback_depth=depth)
        applied = set()
        needed_sync = False
        for i in range(n):
            msg = sender.build(0, [add_op(i)])
            if i in bounded:
                continue
            out = receiver.receive(msg)
            needed_sync |= out.need_sync
            for _uid, _origin, ops in out.apply:
                applied.add(ops[0].node_id)
        assert applied == {f"n{i}" for i in range(n)}
        assert not needed_sync

    @given(stream_with_losses())
    @settings(max_examples=200, deadline=None)
    def test_sync_flag_iff_unrecoverable(self, case):
        """need_sync fires exactly when some delivered packet saw a gap
        larger than its piggyback could cover."""
        n, depth, lost = case
        sender = UpdateManager("s", piggyback_depth=depth)
        receiver = UpdateManager("r", piggyback_depth=depth)
        missing_uncovered = False
        last_seen = 0
        got_sync = False
        for i in range(n):
            msg = sender.build(0, [add_op(i)])
            if i in lost:
                continue
            gap = msg.seq - last_seen - 1
            if gap > depth:
                missing_uncovered = True
            last_seen = msg.seq
            out = receiver.receive(msg)
            got_sync |= out.need_sync
        assert got_sync == missing_uncovered

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=4),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_duplicate_and_reordered_delivery_safe(self, n, depth, rng):
        """Deliver the whole stream twice in random order: every update is
        applied exactly once (uid dedup absorbs duplicates + reordering)."""
        sender = UpdateManager("s", piggyback_depth=depth)
        msgs = [sender.build(0, [add_op(i)]) for i in range(n)]
        deliveries = msgs + msgs
        rng.shuffle(deliveries)
        receiver = UpdateManager("r", piggyback_depth=depth)
        applied = []
        for msg in deliveries:
            for _uid, _origin, ops in receiver.receive(msg).apply:
                applied.append(ops[0].node_id)
        assert sorted(applied) == sorted({f"n{i}" for i in range(n)} & set(applied))
        assert len(applied) == len(set(applied))
