"""Direct tests of the protocol's loss/staleness recovery mechanisms.

The paper specifies sequence numbers + piggybacking + sync polls; a
faithful implementation over lossy UDP additionally needs the mechanisms
tested here (each documented in the repro.core module docstrings):

* heartbeat-advertised update sequence numbers (last-message loss),
* authoritative snapshot pruning on sync responses,
* death certificates (tombstones) with quarantine,
* active tombstone refutation and SWIM-style incarnation bumps,
* pending-sync retry (bootstrap over lossy links),
* the bootstrap-announce window after leadership changes.
"""

import pytest

from repro.core import HierarchicalConfig, HierarchicalNode
from repro.core.updates import UpdateOp
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def make(networks=2, hosts=5, seed=1, loss=0.0, config=None):
    topo, hostlist = build_switched_cluster(networks, hosts)
    net = Network(topo, seed=seed, loss_rate=loss, proc_delay=0.0)
    nodes = deploy(HierarchicalNode, net, hostlist, config=config)
    return net, hostlist, nodes


class TestHeartbeatSeqAdvertising:
    def test_lost_last_update_recovered_via_heartbeat(self):
        """Drop the only remove-update a member would get; the next leader
        heartbeat advertises the missed seq and triggers a sync poll."""
        net, hosts, nodes = make(2, 5)
        net.run(until=15.0)
        member = hosts[1]
        leader = nodes[member].leader_of(0)
        # Simulate the exact loss: wipe the member's knowledge of one node
        # as if the update both (a) removed it everywhere else and (b) got
        # lost here.  We emulate by advancing the leader's seq while the
        # member misses the message: kill a remote node but isolate the
        # member for the delivery instant.
        victim = hosts[7]  # other network
        nodes[victim].stop()
        net.crash_host(victim)
        # Member goes deaf exactly during the detection/update window.
        net.topo.set_up(member, False)
        net.run(until=23.0)
        net.topo.set_up(member, True)
        nodes[member]._send_heartbeat(0)  # re-announce quickly
        net.run(until=40.0)
        assert victim not in nodes[member].view()
        assert nodes[member].view() == sorted(set(hosts) - {victim})


class TestTombstones:
    def test_dead_node_not_resurrected_by_stale_snapshot(self):
        net, hosts, nodes = make(2, 5)
        net.run(until=15.0)
        victim = hosts[3]
        observer = nodes[hosts[1]]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=25.0)  # removal converged
        assert victim not in observer.view()
        # Inject a stale add (as if an ancient sync_resp arrived).
        stale_record = observer.directory.get(hosts[0]).__class__(
            node_id=victim, incarnation=1
        )
        observer._apply_ops(
            [UpdateOp("add", victim, 1, stale_record)], via=hosts[0]
        )
        assert victim not in observer.view()  # tombstone rejected it

    def test_higher_incarnation_beats_tombstone(self):
        net, hosts, nodes = make(2, 5)
        net.run(until=15.0)
        victim = hosts[3]
        observer = nodes[hosts[1]]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=25.0)
        fresh = observer.directory.get(hosts[0]).__class__(
            node_id=victim, incarnation=2
        )
        observer._apply_ops([UpdateOp("add", victim, 2, fresh)], via=hosts[0])
        assert victim in observer.view()

    def test_tombstone_expires_after_quarantine(self):
        cfg = HierarchicalConfig(tombstone_quarantine_factor=1.0)  # 5 s
        net, hosts, nodes = make(2, 5, config=cfg)
        net.run(until=15.0)
        victim = hosts[3]
        observer = nodes[hosts[1]]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=25.0)
        net.run(until=45.0)  # far past quarantine
        stale = observer.directory.get(hosts[0]).__class__(
            node_id=victim, incarnation=1
        )
        observer._apply_ops([UpdateOp("add", victim, 1, stale)], via=hosts[0])
        assert victim in observer.view()  # certificate lapsed

    def test_direct_heartbeat_clears_tombstone(self):
        net, hosts, nodes = make(1, 4)
        net.run(until=12.0)
        victim = hosts[2]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=25.0)
        observer = nodes[hosts[1]]
        assert victim in observer._tombstones
        net.recover_host(victim)
        nodes[victim].start()
        net.run(until=30.0)
        assert victim not in observer._tombstones
        assert victim in observer.view()


class TestIncarnationRefutation:
    def test_node_bumps_incarnation_on_rumor_of_own_death(self):
        net, hosts, nodes = make(1, 4)
        net.run(until=12.0)
        target = nodes[hosts[2]]
        before = target.incarnation
        target._apply_ops(
            [UpdateOp("remove", hosts[2], before)], via=hosts[0]
        )
        assert target.incarnation == before + 1

    def test_stale_rumor_does_not_bump(self):
        net, hosts, nodes = make(1, 4)
        net.run(until=12.0)
        target = nodes[hosts[2]]
        before = target.incarnation
        target._apply_ops(
            [UpdateOp("remove", hosts[2], before - 1)], via=hosts[0]
        )
        assert target.incarnation == before

    def test_false_removal_heals_cluster_wide(self):
        """A wrong remove-update about a live node gets refuted and every
        view returns to the full cluster."""
        net, hosts, nodes = make(2, 5)
        net.run(until=15.0)
        live = hosts[8]  # ordinary member, network 1
        # Some relay point wrongly announces its death.
        announcer = nodes[hosts[0]]
        rec = announcer.directory.get(live)
        announcer._originate([UpdateOp("remove", live, rec.incarnation)])
        net.run(until=35.0)
        for h, node in nodes.items():
            assert live in node.view(), h


class TestPendingSyncRetry:
    def test_sync_retries_until_response(self):
        """With brutal loss on the sync path, bootstrap still completes."""
        net, hosts, nodes = make(2, 5, seed=9, loss=0.30)
        net.run(until=60.0)
        views = [len(n.view()) for n in nodes.values()]
        assert views == [10] * 10

    def test_pending_cleared_for_dead_peer(self):
        net, hosts, nodes = make(2, 5)
        net.run(until=15.0)
        leader = nodes[hosts[0]]
        dead = hosts[1]
        leader._maybe_sync(dead)  # will never answer
        nodes[dead].stop()
        net.crash_host(dead)
        net.run(until=30.0)
        assert dead not in leader._pending_syncs


class TestBootstrapAnnounceWindow:
    def test_window_set_on_leadership(self):
        net, hosts, nodes = make(1, 4)
        net.run(until=12.0)
        leader = nodes[min(hosts)]
        assert leader.is_leader(0)
        cfg = leader.config
        expected_span = cfg.tombstone_quarantine + 2 * cfg.min_sync_interval
        assert leader._bootstrap_announce_until > 0
        assert leader._bootstrap_announce_until <= 12.0 + expected_span

    def test_members_recover_collateral_removals_after_failover(self):
        """Covered end-to-end by the leader+backup death test; here we
        check the mechanism directly: a fresh leader's sync re-announces
        records that are not new to it."""
        net, hosts, nodes = make(3, 6, seed=13)
        net.run(until=15.0)
        leader = nodes[hosts[6]].leader_of(0)
        backup = nodes[leader]._groups[0].my_backup
        for v in {leader, backup}:
            nodes[v].stop()
            net.crash_host(v)
        net.run(until=70.0)
        expect = sorted(set(hosts) - {leader, backup})
        for h in expect:
            assert nodes[h].view() == expect, h
