"""Unit tests for HierarchicalConfig and the Fig. 7 config-file format."""

import pytest

from repro.core import HierarchicalConfig, parse_config_text, render_config_text


class TestHierarchicalConfig:
    def test_defaults_match_paper(self):
        cfg = HierarchicalConfig()
        assert cfg.heartbeat_period == 1.0
        assert cfg.max_loss == 5
        assert cfg.member_size == 228
        assert cfg.max_ttl == 4
        assert cfg.piggyback_depth == 3

    def test_channel_names_derived_from_base(self):
        cfg = HierarchicalConfig(base_channel="239.255.0.2:10050")
        assert cfg.channel(0) == "239.255.0.2:10050/L0"
        assert cfg.channel(3) == "239.255.0.2:10050/L3"

    def test_channel_level_out_of_range(self):
        cfg = HierarchicalConfig(max_ttl=4)
        with pytest.raises(ValueError):
            cfg.channel(4)
        with pytest.raises(ValueError):
            cfg.channel(-1)

    def test_ttl_for_level(self):
        cfg = HierarchicalConfig()
        assert cfg.ttl_for_level(0) == 1
        assert cfg.ttl_for_level(2) == 3

    def test_max_level(self):
        assert HierarchicalConfig(max_ttl=4).max_level == 3

    def test_fail_timeout(self):
        cfg = HierarchicalConfig(heartbeat_period=1.0, max_loss=5)
        assert cfg.fail_timeout == 5.0

    def test_level_timeout_grows_with_level(self):
        cfg = HierarchicalConfig(level_timeout_slope=0.5)
        assert cfg.level_timeout(0) == 5.0
        assert cfg.level_timeout(1) == 7.5
        assert cfg.level_timeout(2) == 10.0

    def test_relayed_timeout(self):
        cfg = HierarchicalConfig(relayed_timeout_factor=4.0)
        assert cfg.relayed_timeout == 20.0

    def test_message_size(self):
        cfg = HierarchicalConfig(member_size=228, header_size=28)
        assert cfg.message_size(1) == 256
        assert cfg.message_size(10) == 2308


FIG7 = """
*SYSTEM
SHM_KEY = 999
MAX_TTL = 4
MCAST_ADDR = 239.255.0.2
MCAST_PORT = 10050
MCAST_FREQ = 1
MAX_LOSS = 5

*SERVICE
[HTTP]
    PARTITION = 0
    Port = 8080
[Cache]
    PARTITION = 2
"""


class TestConfigParsing:
    def test_fig7_example(self):
        cfg, services = parse_config_text(FIG7)
        assert cfg.shm_key == 999
        assert cfg.max_ttl == 4
        assert cfg.base_channel == "239.255.0.2:10050"
        assert cfg.heartbeat_period == 1.0
        assert cfg.max_loss == 5
        assert len(services) == 2
        http = services[0]
        assert http.name == "HTTP"
        assert http.partitions == frozenset({0})
        assert http.params == {"Port": "8080"}
        assert services[1].name == "Cache"
        assert services[1].partitions == frozenset({2})

    def test_freq_is_inverse_period(self):
        cfg, _ = parse_config_text("*SYSTEM\nMCAST_FREQ = 2\n")
        assert cfg.heartbeat_period == 0.5

    def test_partition_ranges_in_service(self):
        _, services = parse_config_text("*SERVICE\n[Retriever]\nPARTITION = 1-3\n")
        assert services[0].partitions == frozenset({1, 2, 3})

    def test_comments_and_blanks_ignored(self):
        cfg, _ = parse_config_text("# header\n*SYSTEM\nMAX_LOSS = 3  # three\n\n")
        assert cfg.max_loss == 3

    def test_unknown_system_key_rejected(self):
        with pytest.raises(ValueError):
            parse_config_text("*SYSTEM\nBOGUS = 1\n")

    def test_param_outside_service_block_rejected(self):
        with pytest.raises(ValueError):
            parse_config_text("*SERVICE\nPARTITION = 0\n")

    def test_line_before_section_rejected(self):
        with pytest.raises(ValueError):
            parse_config_text("MAX_LOSS = 5\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_config_text("*SYSTEM\nnot a key value\n")

    def test_defaults_without_any_keys(self):
        cfg, services = parse_config_text("*SYSTEM\n")
        assert cfg == HierarchicalConfig()
        assert services == []

    def test_channel_overrides_from_file(self):
        cfg, _ = parse_config_text(
            "*SYSTEM\nCHANNEL_L0 = 239.1.1.1:9000\nCHANNEL_L2 = 239.1.1.2:9000\n"
        )
        assert cfg.channel(0) == "239.1.1.1:9000"
        assert cfg.channel(1) == f"{cfg.base_channel}/L1"  # derived
        assert cfg.channel(2) == "239.1.1.2:9000"

    def test_malformed_channel_override_rejected(self):
        with pytest.raises(ValueError):
            parse_config_text("*SYSTEM\nCHANNEL_LX = foo\n")

    def test_with_channel_override_builder(self):
        cfg = HierarchicalConfig().with_channel_override(1, "custom")
        assert cfg.channel(1) == "custom"
        cfg2 = cfg.with_channel_override(1, "custom2")
        assert cfg2.channel(1) == "custom2"
        assert len(cfg2.channel_overrides) == 1

    def test_overridden_channels_work_in_protocol(self):
        from repro.core import HierarchicalNode
        from repro.net import Network
        from repro.net.builders import build_switched_cluster
        from repro.protocols import deploy

        cfg = HierarchicalConfig().with_channel_override(0, "admin-l0")
        topo, hosts = build_switched_cluster(2, 4)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts, config=cfg)
        net.run(until=12.0)
        assert all(len(n.view()) == 8 for n in nodes.values())
        assert net.multicast_fabric.subscribers("admin-l0") == sorted(hosts)

    def test_roundtrip(self):
        cfg, services = parse_config_text(FIG7)
        text = render_config_text(cfg, services)
        cfg2, services2 = parse_config_text(text)
        assert cfg2 == cfg
        assert [s.name for s in services2] == [s.name for s in services]
        assert [s.partitions for s in services2] == [s.partitions for s in services]

    def test_roundtrip_with_channel_overrides(self):
        cfg, services = parse_config_text(
            FIG7 + "\n"
        )
        cfg = cfg.with_channel_override(1, "239.9.9.9:1234")
        text = render_config_text(cfg, services)
        cfg2, _ = parse_config_text(text)
        assert cfg2.channel(1) == "239.9.9.9:1234"
