"""Regression tests for bugs surfaced by the chaos fault-injection sweep.

Three protocol bugs came out of running the seeded chaos scenario
(``repro.chaos``) against the hierarchical node:

* **Stray one-shot timers** — the tombstone-quarantine re-sync backstop
  used a bare ``sim.call_after``, so it survived ``stop()`` and fired
  into the node's next life (or a dead shell).  Fixed by ``_call_once``:
  timers are cancelled on stop and guarded by the scheduling
  incarnation.
* **Abdication treated as death** — a leader stepping down abandons its
  upper channels; observers' higher-level groups timed it out and
  removed a live, heartbeating node cluster-wide.  Fixed by the
  ``_freshly_heard`` guard in ``_handle_peer_death``.
* **Silent backstop purges** — covered by
  ``tests/cluster/test_failures.py::TestPartitionAt`` (a relay point's
  ``relayed_timeout`` purge must originate remove-updates, else its
  subtree keeps the entries forever under the leader's implicit vouch).

Plus two boundary/idempotency cases the sweep's fault model made easy to
hit: a heartbeat landing exactly at the MAX_LOSS deadline, and a
duplicated ``leave`` announcement.
"""

from repro.core import HierarchicalNode
from repro.core.groups import GroupState, PeerState
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def make(networks=2, hosts=5, seed=1, loss=0.0):
    topo, hostlist = build_switched_cluster(networks, hosts)
    net = Network(topo, seed=seed, loss_rate=loss)
    nodes = deploy(HierarchicalNode, net, hostlist)
    return net, hostlist, nodes


class TestOneShotTimers:
    def test_oneshot_fires_while_running(self):
        net, hosts, nodes = make()
        net.run(until=10.0)
        fired = []
        nodes[hosts[0]]._call_once(2.0, fired.append, "x")
        net.run(until=15.0)
        assert fired == ["x"]
        assert not nodes[hosts[0]]._oneshots  # discarded after firing

    def test_oneshots_cancelled_on_stop(self):
        net, hosts, nodes = make()
        net.run(until=10.0)
        fired = []
        node = nodes[hosts[0]]
        node._call_once(5.0, fired.append, "stray")
        node.stop()
        assert not node._oneshots
        net.run(until=30.0)
        assert fired == []

    def test_stale_oneshot_blocked_by_incarnation_guard(self):
        # Belt and braces: even if an event somehow survives the stop()
        # cancellation sweep, the closure's incarnation check must keep a
        # previous life's timer from firing into the restarted node.
        net, hosts, nodes = make()
        net.run(until=10.0)
        fired = []
        node = nodes[hosts[0]]
        node._call_once(5.0, fired.append, "zombie")
        node._oneshots.clear()  # sabotage the cancellation sweep
        node.stop()
        node.start()  # new incarnation
        net.run(until=30.0)
        assert fired == []

    def test_tombstone_backstop_is_a_cancellable_oneshot(self):
        # The original sighting: a node absorbs a quarantined record,
        # schedules the re-sync backstop, then crashes before it fires.
        net, hosts, nodes = make()
        net.run(until=15.0)
        y = nodes[hosts[0]]
        victim = hosts[1]
        rec = nodes[victim].self_record()
        y._bury(victim, rec.incarnation)
        before = len(y._oneshots)
        assert y._absorb_record(rec, victim, net.now) is False  # quarantined
        assert len(y._oneshots) > before  # backstop registered as one-shot
        y.stop()
        assert not y._oneshots  # ...and dies with the node

    def test_no_sync_from_previous_life_after_restart(self):
        # The full regression shape: a node schedules the quarantine
        # re-sync backstop, stops mid-quarantine and restarts.  Every
        # sync attempt after that must belong to the new life — none may
        # come from the old life's timer.
        net, hosts, nodes = make()
        net.run(until=15.0)
        y = nodes[hosts[0]]
        victim = hosts[1]
        rec = nodes[victim].self_record()
        y._bury(victim, rec.incarnation)
        calls = []
        orig = y._maybe_sync
        y._maybe_sync = lambda peer: (
            calls.append((y.running, y.incarnation)),
            orig(peer),
        )
        old_inc = y.incarnation
        assert y._absorb_record(rec, victim, net.now) is False  # backstop set
        y.stop()
        y.start()
        net.run(until=40.0)  # well past quarantine + backstop delay
        assert calls  # the restarted node does sync...
        assert all(running and inc > old_inc for running, inc in calls)


class TestDeadlineBoundary:
    def test_heartbeat_exactly_at_max_loss_deadline_survives(self):
        # The failure deadline is strict: a peer whose last heartbeat
        # landed *exactly* ``timeout`` ago has not missed MAX_LOSS + 1
        # periods yet and must not be purged.
        g = GroupState(level=0)
        g.peers["a"] = PeerState("a", last_heard=10.0)
        assert g.purge_silent(now=15.0, timeout=5.0) == []
        assert "a" in g.peers
        dead = g.purge_silent(now=15.0 + 1e-9, timeout=5.0)
        assert [p.node_id for p in dead] == ["a"]

    def test_heartbeat_refresh_at_deadline_resets_the_clock(self):
        from repro.core.heartbeat import Heartbeat

        net, hosts, nodes = make()
        net.run(until=10.0)
        node = nodes[hosts[0]]
        hb = Heartbeat(
            record=nodes[hosts[1]].self_record(),
            level=0,
            is_leader=False,
            suppressed=False,
        )
        g = GroupState(level=0)
        g.note_heartbeat(hb, now=10.0)
        timeout = node.config.fail_timeout
        # Heard again exactly at the deadline: clock restarts from there.
        g.note_heartbeat(hb, now=10.0 + timeout)
        assert g.purge_silent(10.0 + 2 * timeout, timeout) == []
        assert g.purge_silent(10.0 + 2 * timeout + 1e-9, timeout) != []


class TestDuplicatedLeave:
    def test_duplicated_leave_applied_once(self):
        # Deliver every packet of the leaver twice (chaos duplication at
        # probability 1.0): the ``leave`` op must be idempotent — each
        # observer drops the leaver once and reports exactly one
        # member_down, reason "leave".
        net, hosts, nodes = make()
        net.run(until=15.0)
        leaver = hosts[3]
        net.ensure_fault_plan().add(
            src=leaver, duplicate=1.0, dup_lag=0.01, start=15.0,
            label="dup-leave",
        )
        nodes[leaver].leave()
        net.run(until=20.0)
        assert net.fault_plan.stats["duplicates"] > 0
        for h, node in nodes.items():
            if h != leaver:
                assert leaver not in node.view(), h
        downs = [
            r
            for r in net.trace.records(kind="member_down")
            if r.data["target"] == leaver
        ]
        assert downs
        assert all(r.data["reason"] == "leave" for r in downs)
        per_observer = {}
        for r in downs:
            per_observer[r.node] = per_observer.get(r.node, 0) + 1
        assert set(per_observer.values()) == {1}


class TestAbdicationIsNotDeath:
    def test_silence_on_one_channel_with_fresh_lower_channel_keeps_entry(self):
        net, hosts, nodes = make()
        net.run(until=15.0)
        y = nodes[hosts[1]]
        x = hosts[2]  # same network, plain member: y hears x at level 0
        assert x in y._groups[0].peers
        # Fabricate y's view of an upper channel x has abandoned.
        g = GroupState(level=1)
        g.peers[x] = PeerState(x, last_heard=net.now - 100.0)
        y._groups[1] = g
        y._levels = tuple(sorted(y._groups))
        stale = g.purge_silent(net.now, y.config.level_timeout(1))[0]
        y._handle_peer_death(1, stale)
        # Fresh at level 0: x stepped down, it did not die.
        assert x in y.directory
        downs = [
            r
            for r in net.trace.records(kind="member_down")
            if r.node == y.node_id and r.data["target"] == x
        ]
        assert downs == []

    def test_silence_on_every_channel_is_death(self):
        net, hosts, nodes = make()
        net.run(until=15.0)
        y = nodes[hosts[1]]
        x = hosts[2]
        y._groups[0].peers[x].last_heard = net.now - 100.0
        stale = y._groups[0].purge_silent(net.now, y.config.level_timeout(0))[0]
        y._handle_peer_death(0, stale)
        assert x not in y.directory


class TestPiggybackRecoveryUnderReorder:
    """Update streams must heal through lossy, reordering, duplicating links.

    Companion to the duplicate-path fix in ``UpdateManager.receive``: a
    reordered-behind packet's piggyback can carry updates that were lost
    and then jumped over, and throwing it away leaves directories stale.
    The sweep drives churn (a crash and a recovery) through a fault plan
    that loses, reorders and duplicates every packet for a while, then
    checks that every survivor converged on the same view.
    """

    def _run(self, seed):
        from repro.obs import MetricsRegistry, enable_observability

        net, hosts, nodes = make(networks=2, hosts=5, seed=seed)
        handle = enable_observability(net, MetricsRegistry())
        net.ensure_fault_plan().add(
            loss=0.15,
            reorder=0.5,
            reorder_window=0.4,
            duplicate=0.2,
            dup_lag=0.1,
            start=10.0,
            until=40.0,
            label="reorder-everything",
        )
        victim = hosts[-1]
        net.sim.call_at(15.0, nodes[victim].stop)
        net.sim.call_at(25.0, nodes[victim].start)
        net.run(until=80.0)
        return net, hosts, nodes, handle

    def test_survivors_converge_and_piggyback_recovers(self):
        net, hosts, nodes, handle = self._run(seed=11)
        views = {h: tuple(nodes[h].view()) for h in hosts}
        assert set(views.values()) == {tuple(sorted(hosts))}
        # The fault window actually dropped update packets and the
        # piggyback path healed at least some of them.
        inst = handle.instruments
        assert inst.piggyback_recovered.get() > 0

    def test_reordered_runs_are_seeded_deterministic(self):
        sig_a = [
            (r.time, r.kind, r.node, tuple(sorted(r.data.items())))
            for r in self._run(seed=11)[0].trace
        ]
        sig_b = [
            (r.time, r.kind, r.node, tuple(sorted(r.data.items())))
            for r in self._run(seed=11)[0].trace
        ]
        assert sig_a == sig_b
