"""Tests for the membership proxy protocol (paper Section 3.2, Fig. 6)."""

import pytest

from repro.cluster import ConsumerModule, Directory, NodeRecord, ProviderModule, ServiceSpec
from repro.core import (
    HierarchicalNode,
    MembershipProxy,
    ProxyConfig,
    ServiceSummary,
    install_proxy_forwarding,
)
from repro.net import Network
from repro.net.builders import build_two_datacenters
from repro.protocols import deploy

ADDRS = {"dcA": "vip-A", "dcB": "vip-B"}


def make_two_dc(networks=2, hosts=5, seed=1, proxies_per_dc=2, services_b=("retrieve",)):
    """Two DCs with membership everywhere, providers for ``services_b`` in dcB."""
    topo, dca, dcb = build_two_datacenters(networks, hosts)
    net = Network(topo, seed=seed)
    nodes = {}
    nodes.update(deploy(HierarchicalNode, net, dca))
    nodes.update(deploy(HierarchicalNode, net, dcb))
    providers = []
    for svc in services_b:
        host = dcb[3]
        p = ProviderModule(net, host)
        p.register(ServiceSpec.make(svc, "0", service_time=0.005))
        p.start()
        nodes[host].register_service(ServiceSpec.make(svc, "0"))
        providers.append(p)
    proxies = []
    for dc, hostlist in (("dcA", dca), ("dcB", dcb)):
        for h in hostlist[:proxies_per_dc]:
            proxy = MembershipProxy(net, h, dc, ADDRS[dc], ADDRS, nodes[h])
            proxy.start()
            proxies.append(proxy)
    return net, dca, dcb, nodes, proxies, providers


def invoke(net, consumer, *args, until=None, **kwargs):
    results = []
    ev = consumer.invoke(*args, **kwargs)
    ev._add_waiter(results.append)
    net.run(until=until if until is not None else net.now + 5.0)
    assert results, "invocation never completed"
    return results[0]


class TestServiceSummary:
    def test_from_directory_unions_partitions(self):
        d = Directory("me")
        d.upsert(NodeRecord("a", services={"idx": frozenset({1, 2})}), now=0.0)
        d.upsert(NodeRecord("b", services={"idx": frozenset({3})}), now=0.0)
        s = ServiceSummary.from_directory(d)
        assert s.as_dict() == {"idx": frozenset({1, 2, 3})}

    def test_provides(self):
        s = ServiceSummary((("idx", frozenset({1, 2})),))
        assert s.provides("idx", 1)
        assert s.provides("idx", None)
        assert not s.provides("idx", 3)
        assert not s.provides("doc", 1)

    def test_chunks(self):
        entries = tuple((f"s{i}", frozenset({0})) for i in range(10))
        s = ServiceSummary(entries)
        chunks = s.chunks(4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        merged = tuple(e for c in chunks for e in c.services)
        assert merged == entries

    def test_chunks_small_summary_single_packet(self):
        s = ServiceSummary((("a", frozenset({0})),))
        assert s.chunks(64) == [s]


class TestProxyGroup:
    def test_one_leader_per_dc(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        leaders = [(p.dc, p.host) for p in proxies if p.is_leader]
        assert len(leaders) == 2
        assert {dc for dc, _h in leaders} == {"dcA", "dcB"}

    def test_leader_owns_external_address(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        for p in proxies:
            if p.is_leader:
                assert net.transport.address_owner(p.external_addr) == p.host

    def test_summaries_exchanged(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        pa = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        assert pa.known_remote_dcs() == ["dcB"]
        assert pa.remote["dcB"].summary.get("retrieve") == frozenset({0})

    def test_non_leader_proxies_warm_via_relay(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        followers = [p for p in proxies if p.dc == "dcA" and not p.is_leader]
        assert followers
        for p in followers:
            assert p.remote["dcB"].summary.get("retrieve") == frozenset({0})

    def test_ip_failover_on_leader_death(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        pa = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        old_host = pa.host
        pa.stop()
        nodes[old_host].stop()
        net.crash_host(old_host)
        net.run(until=35.0)
        new_leader = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        assert new_leader.host != old_host
        assert net.transport.address_owner("vip-A") == new_leader.host

    def test_remote_summary_expires_when_dc_unreachable(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        pa = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        assert pa.known_remote_dcs() == ["dcB"]
        net.fail_device("dcA-border")  # WAN cut
        net.run(until=25.0)
        assert pa.known_remote_dcs() == []


class TestRobustness:
    def test_summaries_survive_wan_loss(self):
        topo, dca, dcb = build_two_datacenters(2, 5)
        net = Network(topo, seed=8, loss_rate=0.10)
        nodes = {}
        nodes.update(deploy(HierarchicalNode, net, dca))
        nodes.update(deploy(HierarchicalNode, net, dcb))
        host = dcb[3]
        p = ProviderModule(net, host)
        p.register(ServiceSpec.make("svc", "0"))
        p.start()
        nodes[host].register_service(ServiceSpec.make("svc", "0"))
        proxies = []
        for dc, hostlist in (("dcA", dca), ("dcB", dcb)):
            for h in hostlist[:2]:
                proxy = MembershipProxy(net, h, dc, ADDRS[dc], ADDRS, nodes[h])
                proxy.start()
                proxies.append(proxy)
        net.run(until=20.0)
        pa = next(px for px in proxies if px.dc == "dcA" and px.is_leader)
        # Periodic summaries are soft state: individual losses don't matter.
        assert pa.known_remote_dcs() == ["dcB"]
        assert pa.remote["dcB"].summary.get("svc") == frozenset({0})

    def test_large_summary_chunked_and_reassembled(self):
        cfg = ProxyConfig(max_entries_per_packet=4)
        net, dca, dcb, nodes, proxies, _ = make_two_dc(services_b=())
        # Re-create dcB's proxies with the small-chunk config.
        for p in list(proxies):
            if p.dc == "dcB":
                p.stop()
                proxies.remove(p)
        for h in dcb[:2]:
            p = MembershipProxy(net, h, "dcB", ADDRS["dcB"], ADDRS, nodes[h], config=cfg)
            p.start()
            proxies.append(p)
        # 11 distinct services in dcB -> 3 chunks per summary.
        for i in range(11):
            host = dcb[3]
            nodes[host].register_service(ServiceSpec.make(f"svc{i:02d}", "0"))
        net.run(until=20.0)
        pa = next(px for px in proxies if px.dc == "dcA" and px.is_leader)
        assert pa.known_remote_dcs() == ["dcB"]
        names = {n for n in pa.remote["dcB"].summary if n.startswith("svc")}
        assert names == {f"svc{i:02d}" for i in range(11)}

    def test_epoch_resets_partial_state(self):
        from repro.core.proxy import _RemoteDc

        proxy = MembershipProxy.__new__(MembershipProxy)
        proxy.remote = {}
        proxy.network = type("N", (), {"now": 10.0})()
        proxy._merge_remote_summary("dcX", 1, [("a", frozenset({0}))], final=False)
        proxy._merge_remote_summary("dcX", 2, [("b", frozenset({1}))], final=True)
        state = proxy.remote["dcX"]
        assert "a" not in state.summary  # epoch 1 chunk discarded
        assert state.summary["b"] == frozenset({1})
        # Stale chunk from an old epoch arrives late: ignored.
        proxy._merge_remote_summary("dcX", 1, [("c", frozenset({2}))], final=True)
        assert "c" not in state.summary


class TestForwarding:
    def test_cross_dc_invocation(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        consumer = ConsumerModule(net, dca[4], nodes[dca[4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-A")
        result = invoke(net, consumer, "retrieve", 0, {"q": "x"})
        assert result.ok
        assert result.value["echo"] == {"q": "x"}
        # One WAN round trip dominates: >= 90 ms.
        assert result.latency >= 0.09

    def test_local_service_not_forwarded(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        local = ProviderModule(net, dca[3])
        local.register(ServiceSpec.make("retrieve", "0", service_time=0.005))
        local.start()
        nodes[dca[3]].register_service(ServiceSpec.make("retrieve", "0"))
        net.run(until=12.0)
        consumer = ConsumerModule(net, dca[4], nodes[dca[4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-A")
        result = invoke(net, consumer, "retrieve", 0)
        assert result.ok
        assert result.latency < 0.05  # stayed local

    def test_unknown_service_rejected(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        consumer = ConsumerModule(net, dca[4], nodes[dca[4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-A")
        result = invoke(net, consumer, "nonexistent", 0)
        assert not result.ok
        assert result.error == "no_remote_dc"

    def test_wrong_partition_rejected(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        consumer = ConsumerModule(net, dca[4], nodes[dca[4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-A")
        result = invoke(net, consumer, "retrieve", 7)
        assert not result.ok

    def test_forwarding_after_proxy_failover(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        pa = next(p for p in proxies if p.dc == "dcA" and p.is_leader)
        pa.stop()
        nodes[pa.host].stop()
        net.crash_host(pa.host)
        net.run(until=35.0)
        consumer = ConsumerModule(net, dca[4], nodes[dca[4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-A")
        result = invoke(net, consumer, "retrieve", 0)
        assert result.ok

    def test_wan_cut_fails_gracefully(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc()
        net.run(until=12.0)
        net.fail_device("dcB-border")
        net.run(until=25.0)
        consumer = ConsumerModule(net, dca[4], nodes[dca[4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-A")
        result = invoke(net, consumer, "retrieve", 0)
        assert not result.ok
        assert result.error in ("no_remote_dc", "remote_timeout", "proxy_timeout")

    def test_summary_updates_after_remote_service_appears(self):
        net, dca, dcb, nodes, proxies, _ = make_two_dc(services_b=())
        net.run(until=12.0)
        consumer = ConsumerModule(net, dca[4], nodes[dca[4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-A")
        result = invoke(net, consumer, "newsvc", 0)
        assert not result.ok
        # Service appears in dcB at runtime.
        p = ProviderModule(net, dcb[2])
        p.register(ServiceSpec.make("newsvc", "0", service_time=0.001))
        p.start()
        nodes[dcb[2]].register_service(ServiceSpec.make("newsvc", "0"))
        net.run(until=net.now + 5.0)
        result = invoke(net, consumer, "newsvc", 0)
        assert result.ok
