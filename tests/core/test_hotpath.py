"""Unit tests for the protocol hot-path engine (interning + fast receive).

The behavioural contract (identical seeded traces with the engine on and
off) is enforced by ``tests/integration/test_determinism_guard.py``; these
tests pin the *mechanisms*: senders reuse one frozen heartbeat object per
level between state changes, the documented signature invalidates it, and
the receive fast path keeps peers and the directory fresh.
"""

from repro.cluster import ServiceSpec
from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def make_cluster(networks=1, hosts=4, seed=3, **node_kwargs):
    # One extra host per network stays node-less: a real topology position
    # the heartbeat probe can subscribe from.
    topo, hosts_list = build_switched_cluster(networks, hosts + 1)
    probe_host = hosts_list.pop()
    net = Network(topo, seed=seed)
    nodes = deploy(HierarchicalNode, net, hosts_list, **node_kwargs)
    return net, hosts_list, nodes, probe_host


def capture_heartbeats(net, channel, sender, probe_host):
    """Subscribe a probe that records heartbeat payloads from ``sender``."""
    seen = []

    def probe(packet):
        if packet.kind == "heartbeat" and packet.payload.node_id == sender:
            seen.append(packet.payload)

    net.subscribe(channel, probe_host, probe)
    return seen


class TestHeartbeatInterning:
    def test_steady_state_reuses_one_payload_object(self):
        net, hosts, nodes, probe_host = make_cluster()
        net.run(until=12.0)  # formation settles
        seen = capture_heartbeats(
            net, nodes[hosts[0]].config.channel(0), hosts[0], probe_host
        )
        net.run(until=25.0)
        assert len(seen) >= 5
        # Late joiner syncs may still advance update_seq shortly after
        # formation; once genuinely quiet, every period reuses one object.
        tail = seen[-5:]
        assert all(hb is tail[0] for hb in tail)

    def test_self_record_change_invalidates_cached_heartbeat(self):
        net, hosts, nodes, probe_host = make_cluster()
        net.run(until=12.0)
        node = nodes[hosts[0]]
        seen = capture_heartbeats(net, node.config.channel(0), hosts[0], probe_host)
        net.run(until=15.0)
        before = seen[-1]
        node.register_service(ServiceSpec("idx", "0-3"))
        net.run(until=18.0)
        after = seen[-1]
        assert after is not before
        assert "idx" in after.record.services

    def test_update_seq_advance_invalidates_cached_heartbeat(self):
        net, hosts, nodes, probe_host = make_cluster(hosts=5)
        net.run(until=12.0)
        leader = next(h for h in hosts if nodes[h].is_leader(0))
        seen = capture_heartbeats(
            net, nodes[leader].config.channel(0), leader, probe_host
        )
        net.run(until=15.0)
        before = seen[-1]
        # A member leaving makes the leader originate a remove update,
        # advancing its update_seq on the channel.
        victim = next(h for h in hosts if h != leader)
        nodes[victim].leave()
        net.run(until=18.0)
        after = seen[-1]
        assert after is not before
        assert after.update_seq > before.update_seq

    def test_legacy_path_does_not_intern(self):
        net, hosts, nodes, probe_host = make_cluster(use_fast_path=False)
        net.run(until=12.0)
        seen = capture_heartbeats(
            net, nodes[hosts[0]].config.channel(0), hosts[0], probe_host
        )
        net.run(until=20.0)
        assert len(seen) >= 5
        assert all(hb is not seen[0] for hb in seen[1:])


class TestReceiveFastPath:
    def test_unchanged_heartbeats_keep_everything_fresh(self):
        net, hosts, nodes, _probe = make_cluster(hosts=6)
        net.run(until=60.0)  # dozens of quiet periods on the fast path
        for node in nodes.values():
            assert node.view() == sorted(hosts)
        # Nobody was ever wrongly purged.
        assert not list(net.trace.records(kind="member_down"))

    def test_failure_detection_still_works_on_fast_path(self):
        net, hosts, nodes, _probe = make_cluster(hosts=6)
        net.run(until=20.0)
        victim = hosts[3]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=40.0)
        for h in hosts:
            if h != victim:
                assert victim not in nodes[h].view()
