"""Property-based tests for the election rules and formation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NodeRecord
from repro.core import Decision, GroupState, Heartbeat, decide
from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy

DELAY = 2.5


@st.composite
def group_states(draw):
    g = GroupState(level=draw(st.integers(min_value=0, max_value=3)))
    n_peers = draw(st.integers(min_value=0, max_value=6))
    for i in range(n_peers):
        hb = Heartbeat(
            record=NodeRecord(f"p{i}", incarnation=1),
            level=g.level,
            is_leader=draw(st.booleans()),
            suppressed=draw(st.booleans()),
        )
        g.note_heartbeat(hb, now=0.0)
    g.i_am_leader = draw(st.booleans())
    g.suppressed = draw(st.booleans())
    if draw(st.booleans()):
        g.leaderless_since = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
    return g


class TestElectionProperties:
    @given(group_states(), st.floats(min_value=0, max_value=100, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_never_become_leader_while_seeing_one(self, g, now):
        decision = decide(g, "me", now, DELAY)
        if g.visible_leaders():
            assert decision is not Decision.BECOME_LEADER

    @given(group_states(), st.floats(min_value=0, max_value=100, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_step_down_only_for_lower_id_leader(self, g, now):
        decision = decide(g, "me", now, DELAY)
        if decision is Decision.STEP_DOWN:
            assert g.i_am_leader
            assert g.visible_leaders() and g.visible_leaders()[0] < "me"

    @given(group_states(), st.floats(min_value=0, max_value=100, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_contention_respects_lower_unsuppressed_ids(self, g, now):
        decision = decide(g, "p3", now, DELAY)
        if decision is Decision.BECOME_LEADER:
            lower_contenders = [
                p
                for p in g.peers.values()
                if not p.suppressed and not p.is_leader and p.node_id < "p3"
            ]
            assert not lower_contenders

    @given(group_states())
    @settings(max_examples=300, deadline=None)
    def test_suppression_tracks_leader_visibility(self, g):
        decide(g, "me", 50.0, DELAY)
        if not g.i_am_leader:
            assert g.suppressed == bool(g.visible_leaders())

    @given(group_states(), st.floats(min_value=0, max_value=100, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_decide_is_idempotent_within_an_instant(self, g, now):
        first = decide(g, "me", now, DELAY)
        if first is Decision.BECOME_LEADER:
            g.i_am_leader = True
        second = decide(g, "me", now, DELAY)
        if first is Decision.BECOME_LEADER:
            assert second in (Decision.STAY,)
        elif first is Decision.STAY and not g.i_am_leader:
            assert second is Decision.STAY


class TestFormationInvariants:
    """Whole-protocol invariants on randomly-shaped clusters."""

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=12, deadline=None)
    def test_formation_invariants(self, networks, per, seed):
        topo, hosts = build_switched_cluster(networks, per)
        net = Network(topo, seed=seed)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=14.0)
        n = len(hosts)
        leaders0 = [h for h in hosts if nodes[h].is_leader(0)]
        # Complete views everywhere.
        assert all(len(node.view()) == n for node in nodes.values())
        # Exactly one level-0 leader per network, and it is the lowest id.
        assert len(leaders0) == networks
        for netidx in range(networks):
            members = [h for h in hosts if f"-n{netidx}-" in h]
            assert min(members) in leaders0
        # A leader never sees another leader on the same channel.
        for node in nodes.values():
            for level in node.levels():
                if node.is_leader(level):
                    assert node._groups[level].visible_leaders() == []
        # Participation invariant: level l+1 participation implies
        # leadership at level l.
        for node in nodes.values():
            levels = node.levels()
            for level in levels:
                if level > 0:
                    assert node.is_leader(level - 1)
