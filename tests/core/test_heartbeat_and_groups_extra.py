"""Additional coverage: heartbeat payloads, backup selection, group edges."""

import pytest

from repro.cluster import NodeRecord
from repro.core import GroupState, Heartbeat, HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


class TestHeartbeatPayload:
    def test_node_id_proxies_record(self):
        hb = Heartbeat(
            record=NodeRecord("n1", incarnation=3),
            level=0,
            is_leader=True,
            suppressed=False,
            backup="n2",
        )
        assert hb.node_id == "n1"
        assert hb.record.incarnation == 3

    def test_default_update_seq_zero(self):
        hb = Heartbeat(
            record=NodeRecord("n1"), level=0, is_leader=False, suppressed=False
        )
        assert hb.update_seq == 0


class TestBackupSelection:
    def test_leader_designates_a_backup(self):
        topo, hosts = build_switched_cluster(1, 5)
        net = Network(topo, seed=3)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        leader = nodes[min(hosts)]
        assert leader.is_leader(0)
        backup = leader._groups[0].my_backup
        assert backup in hosts and backup != leader.node_id

    def test_backup_replaced_when_it_dies(self):
        topo, hosts = build_switched_cluster(1, 5)
        net = Network(topo, seed=3)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        leader = nodes[min(hosts)]
        backup = leader._groups[0].my_backup
        nodes[backup].stop()
        net.crash_host(backup)
        net.run(until=30.0)
        new_backup = leader._groups[0].my_backup
        assert new_backup != backup
        assert new_backup in set(hosts) - {backup, leader.node_id}

    def test_backup_announced_in_heartbeats(self):
        topo, hosts = build_switched_cluster(1, 4)
        net = Network(topo, seed=3)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        leader_id = min(hosts)
        follower = nodes[hosts[-1]]
        peer = follower._groups[0].peers[leader_id]
        assert peer.is_leader
        assert peer.backup == nodes[leader_id]._groups[0].my_backup


class TestGroupEdgeCases:
    def test_singleton_chain_to_max_level(self):
        # One single host: leader of every level up to max_ttl.
        topo, hosts = build_switched_cluster(1, 1)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=20.0)
        node = nodes[hosts[0]]
        assert node.levels() == [0, 1, 2, 3]
        assert all(node.is_leader(level) for level in node.levels())
        assert node.view() == hosts

    def test_two_hosts_one_leader(self):
        topo, hosts = build_switched_cluster(1, 2)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        leaders = [h for h in hosts if nodes[h].is_leader(0)]
        assert leaders == [min(hosts)]
        assert all(len(n.view()) == 2 for n in nodes.values())

    def test_group_members_listing(self):
        topo, hosts = build_switched_cluster(1, 4)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        node = nodes[hosts[0]]
        members = node.group_members(0)
        assert sorted(members + [hosts[0]]) == sorted(hosts)
        assert node.group_members(7) == []

    def test_top_level_property(self):
        topo, hosts = build_switched_cluster(2, 3)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=12.0)
        root = nodes[min(hosts)]
        assert root.top_level >= 1
        follower = nodes[hosts[1]]
        assert follower.top_level == 0
