"""Randomized churn: the protocol converges after ANY failure schedule.

Hypothesis drives small clusters through random sequences of crash /
recover / graceful-leave events; after quiescence every survivor's view
must equal the ground-truth live set exactly (completeness AND accuracy),
and the hierarchy invariants must hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HierarchicalNode, hierarchy_invariant_errors
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


@st.composite
def churn_schedules(draw):
    """(seed, [(at, action, host_index)]) with staggered times."""
    seed = draw(st.integers(min_value=0, max_value=50))
    n_events = draw(st.integers(min_value=1, max_value=4))
    events = []
    t = 15.0
    for _ in range(n_events):
        t += draw(st.floats(min_value=2.0, max_value=10.0))
        action = draw(st.sampled_from(["crash", "recover", "leave"]))
        idx = draw(st.integers(min_value=0, max_value=7))
        events.append((t, action, idx))
    return seed, events


class TestRandomChurn:
    @given(churn_schedules())
    @settings(max_examples=20, deadline=None)
    def test_views_converge_after_any_schedule(self, schedule):
        seed, events = schedule
        topo, hosts = build_switched_cluster(2, 4)
        net = Network(topo, seed=seed)
        nodes = deploy(HierarchicalNode, net, hosts)
        alive = {h: True for h in hosts}

        def apply(action, host):
            if action == "crash" and alive[host]:
                nodes[host].stop()
                net.crash_host(host)
                alive[host] = False
            elif action == "leave" and alive[host]:
                nodes[host].leave()
                net.crash_host(host)
                alive[host] = False
            elif action == "recover" and not alive[host]:
                net.recover_host(host)
                nodes[host].start()
                alive[host] = True

        last = 15.0
        for at, action, idx in events:
            net.sim.call_at(at, apply, action, hosts[idx])
            last = at
        # Quiesce long enough for worst-case re-elections, tombstone
        # quarantines and backstop purges to settle.
        net.run(until=last + 45.0)

        live = sorted(h for h in hosts if alive[h])
        for h in live:
            assert nodes[h].view() == live, (h, nodes[h].view(), live)
        running = {h: nodes[h] for h in live}
        assert hierarchy_invariant_errors(running) == []

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_kill_everyone_but_one(self, seed):
        topo, hosts = build_switched_cluster(2, 3)
        net = Network(topo, seed=seed)
        nodes = deploy(HierarchicalNode, net, hosts)
        net.run(until=15.0)
        survivor = hosts[seed % len(hosts)]
        t = 16.0
        for h in hosts:
            if h != survivor:
                net.sim.call_at(t, nodes[h].stop)
                net.sim.call_at(t, net.crash_host, h)
                t += 1.0
        net.run(until=t + 40.0)
        assert nodes[survivor].view() == [survivor]
        assert nodes[survivor].is_leader(0)
