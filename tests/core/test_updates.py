"""Unit tests for the update sub-protocol (seq numbers, piggyback, dedup)."""

from repro.cluster import NodeRecord
from repro.core import UpdateManager, UpdateOp


def add_op(nid, inc=1):
    return UpdateOp("add", nid, inc, NodeRecord(nid, incarnation=inc))


def rm_op(nid, inc=1):
    return UpdateOp("remove", nid, inc)


class TestBuild:
    def test_seq_increments_per_level(self):
        um = UpdateManager("me")
        m1 = um.build(0, [add_op("a")])
        m2 = um.build(0, [add_op("b")])
        m3 = um.build(1, [add_op("c")])
        assert (m1.seq, m2.seq, m3.seq) == (1, 2, 1)

    def test_uid_unique_and_carried_through(self):
        um = UpdateManager("me")
        m1 = um.build(0, [add_op("a")])
        m2 = um.build(0, [add_op("b")])
        assert m1.uid != m2.uid
        relay = um.build(1, m1.ops, uid=m1.uid, origin=m1.origin)
        assert relay.uid == m1.uid
        assert relay.origin == "me"

    def test_piggyback_carries_last_k(self):
        um = UpdateManager("me", piggyback_depth=3)
        msgs = [um.build(0, [add_op(f"n{i}")]) for i in range(5)]
        last = msgs[-1]
        assert [seq for seq, _uid, _origin, _ops in last.piggyback] == [2, 3, 4]

    def test_piggyback_per_level(self):
        um = UpdateManager("me")
        um.build(0, [add_op("a")])
        m = um.build(1, [add_op("b")])
        assert m.piggyback == ()

    def test_current_seq(self):
        um = UpdateManager("me")
        assert um.current_seq(0) == 0
        um.build(0, [add_op("a")])
        assert um.current_seq(0) == 1

    def test_message_size(self):
        um = UpdateManager("me")
        m = um.build(0, [add_op("a"), rm_op("b")])
        # header 28 + add 228 + remove 24
        assert m.size(member_size=228, header_size=28) == 280

    def test_size_includes_piggyback(self):
        um = UpdateManager("me", piggyback_depth=3)
        um.build(0, [add_op("a")])
        m = um.build(0, [add_op("b")])
        assert m.size(228, 28) == 28 + 228 + 228


class TestReceive:
    def test_in_order_stream(self):
        alice, bob = UpdateManager("alice"), UpdateManager("bob")
        for i in range(3):
            msg = alice.build(0, [add_op(f"n{i}")])
            out = bob.receive(msg)
            assert [ops[0].node_id for _uid, _origin, ops in out.apply] == [f"n{i}"]
            assert not out.need_sync

    def test_duplicate_uid_not_reapplied(self):
        alice, bob = UpdateManager("alice"), UpdateManager("bob")
        msg = alice.build(0, [add_op("x")])
        assert len(bob.receive(msg).apply) == 1
        assert bob.receive(msg).apply == []

    def test_relay_through_second_channel_deduped(self):
        alice, carol, bob = UpdateManager("alice"), UpdateManager("carol"), UpdateManager("bob")
        orig = alice.build(0, [add_op("x")])
        assert len(bob.receive(orig).apply) == 1
        relay = carol.build(1, orig.ops, uid=orig.uid, origin=orig.origin)
        assert bob.receive(relay).apply == []

    def test_gap_recovered_from_piggyback(self):
        alice, bob = UpdateManager("alice"), UpdateManager("bob")
        m1 = alice.build(0, [add_op("a")])
        m2 = alice.build(0, [add_op("b")])  # lost
        m3 = alice.build(0, [add_op("c")])
        bob.receive(m1)
        out = bob.receive(m3)
        applied = [ops[0].node_id for _uid, _origin, ops in out.apply]
        assert applied == ["b", "c"]  # recovered op first, in seq order
        assert not out.need_sync

    def test_gap_beyond_piggyback_needs_sync(self):
        alice, bob = UpdateManager("alice", piggyback_depth=3), UpdateManager("bob", piggyback_depth=3)
        msgs = [alice.build(0, [add_op(f"n{i}")]) for i in range(6)]
        bob.receive(msgs[0])
        out = bob.receive(msgs[5])  # lost seqs 2..5: piggyback has 3..5 only
        assert out.need_sync
        # Still recovers what the piggyback carried.
        recovered = {ops[0].node_id for _uid, _origin, ops in out.apply}
        assert recovered == {"n2", "n3", "n4", "n5"}

    def test_exactly_max_loss_recoverable(self):
        # piggyback depth 3 tolerates 3 consecutive losses
        alice, bob = UpdateManager("a"), UpdateManager("b")
        msgs = [alice.build(0, [add_op(f"n{i}")]) for i in range(5)]
        bob.receive(msgs[0])
        out = bob.receive(msgs[4])  # seqs 2,3,4 lost; piggyback = 2,3,4
        assert not out.need_sync
        assert len(out.apply) == 4

    def test_reordered_old_packet_is_noop(self):
        alice, bob = UpdateManager("a"), UpdateManager("b")
        m1 = alice.build(0, [add_op("a")])
        m2 = alice.build(0, [add_op("b")])
        bob.receive(m2)
        out = bob.receive(m1)  # arrives late; uid already seen via piggyback
        assert not out.need_sync
        assert out.apply == []

    def test_streams_per_sender(self):
        a1, a2, bob = UpdateManager("s1"), UpdateManager("s2"), UpdateManager("bob")
        bob.receive(a1.build(0, [add_op("x")]))
        out = bob.receive(a2.build(0, [add_op("y")]))
        assert not out.need_sync  # different sender, own stream

    def test_forget_sender_resets_stream(self):
        alice, bob = UpdateManager("a"), UpdateManager("b")
        for i in range(5):
            bob.receive(alice.build(0, [add_op(f"n{i}")]))
        bob.forget_sender("a")
        fresh = UpdateManager("a")  # restarted daemon, seq restarts at 1
        out = bob.receive(fresh.build(0, [add_op("z")]))
        assert len(out.apply) == 1
        assert not out.need_sync


class TestBehind:
    def test_not_behind_initially_at_zero(self):
        bob = UpdateManager("b")
        assert not bob.behind("a", 0, 0)

    def test_behind_when_never_heard(self):
        bob = UpdateManager("b")
        assert bob.behind("a", 0, 3)

    def test_behind_when_lagging(self):
        alice, bob = UpdateManager("a"), UpdateManager("b")
        bob.receive(alice.build(0, [add_op("x")]))
        assert not bob.behind("a", 0, 1)
        assert bob.behind("a", 0, 2)

    def test_note_synced(self):
        bob = UpdateManager("b")
        bob.note_synced("a", 0, 5)
        assert not bob.behind("a", 0, 5)
        assert bob.behind("a", 0, 6)

    def test_note_synced_never_regresses(self):
        bob = UpdateManager("b")
        bob.note_synced("a", 0, 5)
        bob.note_synced("a", 0, 3)
        assert not bob.behind("a", 0, 5)

    def test_reset(self):
        um = UpdateManager("me")
        um.build(0, [add_op("a")])
        um.note_synced("x", 0, 9)
        um.reset()
        assert um.current_seq(0) == 0
        assert um.behind("x", 0, 1)


class TestReorderingEdges:
    """Edge cases around duplicate-behind packets and the recovery window."""

    def test_duplicate_behind_with_unseen_uid_applies_and_relays(self):
        # With no piggyback a gap cannot recover the lost update, so when
        # the reordered packet finally lands behind the stream position its
        # uid is genuinely new: it must still apply and relay.
        alice = UpdateManager("a", piggyback_depth=0)
        bob = UpdateManager("b", piggyback_depth=0)
        m1 = alice.build(0, [add_op("x")])
        m2 = alice.build(0, [add_op("y")])
        first = bob.receive(m2)  # m1 still in flight
        assert first.need_sync  # hole, nothing to recover from
        late = bob.receive(m1)  # duplicate-behind, uid unseen
        assert [ops[0].node_id for _uid, _origin, ops in late.apply] == ["x"]
        assert late.relay
        assert not late.need_sync

    def test_duplicate_behind_recovers_unseen_piggyback(self):
        """Regression: the duplicate path discarded piggyback recovery.

        A directory sync can jump the stream position over lost seqs
        (``note_synced``); when a delayed packet from before the jump
        finally lands it is duplicate-behind, but its piggyback may
        carry the very updates that were lost.  They used to be thrown
        away; they must be recovered exactly like the forward-gap path.
        """
        alice, bob = UpdateManager("a"), UpdateManager("b")
        m1 = alice.build(0, [add_op("a1")])
        alice.build(0, [add_op("a2")])  # lost
        alice.build(0, [add_op("a3")])  # lost
        m4 = alice.build(0, [add_op("a4")])  # delayed in flight
        bob.receive(m1)
        bob.note_synced("a", 0, 4)  # full sync jumped the stream forward
        out = bob.receive(m4)  # arrives late: seq 4 <= last 4
        applied = [ops[0].node_id for _uid, _origin, ops in out.apply]
        assert applied == ["a2", "a3", "a4"]
        assert out.recovered == 2  # a2/a3 came from the piggyback
        assert out.relay  # m4's own uid was never seen either
        assert not out.need_sync
        # Stream position must not regress from piggybacked (older) seqs.
        assert not bob.behind("a", 0, 4)

    def test_recovered_counter_on_gap_path(self):
        alice, bob = UpdateManager("a"), UpdateManager("b")
        bob.receive(alice.build(0, [add_op("a")]))
        alice.build(0, [add_op("b")])  # lost
        out = bob.receive(alice.build(0, [add_op("c")]))
        assert len(out.apply) == 2
        assert out.recovered == 1  # only "b" was a piggyback recovery

    def test_duplicate_behind_with_seen_uid_is_silent(self):
        alice, bob = UpdateManager("a"), UpdateManager("b")
        m1 = alice.build(0, [add_op("x")])
        m2 = alice.build(0, [add_op("y")])
        bob.receive(m2)  # piggyback recovers m1's ops, marking its uid seen
        late = bob.receive(m1)
        assert late.apply == [] and not late.relay and not late.need_sync

    def test_gap_exactly_piggyback_depth_fully_recovers(self):
        depth = 3
        alice = UpdateManager("a", piggyback_depth=depth)
        bob = UpdateManager("b", piggyback_depth=depth)
        msgs = [alice.build(0, [add_op(f"n{i}")]) for i in range(depth + 2)]
        bob.receive(msgs[0])
        out = bob.receive(msgs[depth + 1])  # exactly `depth` seqs lost
        assert not out.need_sync
        applied = [ops[0].node_id for _uid, _origin, ops in out.apply]
        assert applied == [f"n{i}" for i in range(1, depth + 2)]

    def test_gap_one_past_piggyback_depth_needs_sync(self):
        depth = 3
        alice = UpdateManager("a", piggyback_depth=depth)
        bob = UpdateManager("b", piggyback_depth=depth)
        msgs = [alice.build(0, [add_op(f"n{i}")]) for i in range(depth + 3)]
        bob.receive(msgs[0])
        out = bob.receive(msgs[depth + 2])  # depth+1 seqs lost: one too many
        assert out.need_sync
        # The piggyback tail still recovers what it carried.
        applied = {ops[0].node_id for _uid, _origin, ops in out.apply}
        assert applied == {f"n{i}" for i in range(2, depth + 3)}


class TestSeenUidWindow:
    """The uid-dedup memory is a bounded insertion-ordered window."""

    def test_window_bounds_memory_under_sustained_churn(self):
        bob = UpdateManager("b", seen_uid_window=8)
        senders = [UpdateManager(f"s{i}") for i in range(4)]
        for round_no in range(200):
            for s in senders:
                bob.receive(s.build(0, [add_op(f"n{round_no}")]))
        assert len(bob._seen_uids) <= 8

    def test_oldest_uids_evicted_first(self):
        um = UpdateManager("me", seen_uid_window=3)
        for uid in (1, 2, 3, 4, 5):
            um.mark_seen("o", uid)
        assert list(um._seen_uids) == [("o", 3), ("o", 4), ("o", 5)]

    def test_mark_seen_idempotent_no_reorder(self):
        um = UpdateManager("me", seen_uid_window=3)
        for uid in (1, 2, 3):
            um.mark_seen("o", uid)
        um.mark_seen("o", 1)  # already present: must not refresh or evict
        assert list(um._seen_uids) == [("o", 1), ("o", 2), ("o", 3)]

    def test_same_uid_different_origin_not_deduped(self):
        # Real daemons allocate uids from their own process counter, so
        # two nodes can both emit uid 1.  Dedup keys on (origin, uid)
        # content: a colliding uid from a different originator is a
        # different update and must still apply.
        bob = UpdateManager("b")
        one = UpdateManager("s1", uid_alloc=iter([1]).__next__)
        two = UpdateManager("s2", uid_alloc=iter([1]).__next__)
        assert len(bob.receive(one.build(0, [add_op("x")])).apply) == 1
        out = bob.receive(two.build(0, [add_op("y")]))
        assert [ops[0].node_id for _uid, _origin, ops in out.apply] == ["y"]
        assert out.relay

    def test_piggyback_preserves_each_entrys_origin(self):
        # A piggybacked entry may be a relay of someone else's update; its
        # recovery must re-advertise the *original* (origin, uid), not the
        # primary message's origin.
        alice, bob = UpdateManager("a"), UpdateManager("b")
        relayed = alice.build(0, [add_op("x")], uid=7, origin="far")  # lost
        assert relayed.origin == "far"
        m2 = alice.build(0, [add_op("y")])
        out = bob.receive(m2)  # gap of 1: piggyback recovers the relay
        assert [(uid, origin) for uid, origin, _ops in out.apply] == [
            (7, "far"),
            (m2.uid, "a"),
        ]
        # The recovered group was marked seen under its true origin: the
        # straggler itself is now a duplicate.
        assert bob.receive(relayed).apply == []

    def test_evicted_uid_straggler_reapplies_harmlessly(self):
        # An evicted uid that straggles back is re-applied; the update ops
        # are idempotent per the paper, so dedup loss only costs work.
        alice = UpdateManager("a", piggyback_depth=0)
        bob = UpdateManager("b", piggyback_depth=0, seen_uid_window=2)
        m1 = alice.build(0, [add_op("x")])
        for i in range(4):  # push m1's uid out of the window
            bob.receive(alice.build(0, [add_op(f"f{i}")]))
        out = bob.receive(m1)  # behind the stream AND evicted from dedup
        assert [ops[0].node_id for _uid, _origin, ops in out.apply] == ["x"]
        assert out.relay
