"""Tests for the graceful-departure extension."""

import pytest

from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def make(networks=2, hosts=5, seed=1, loss=0.0):
    topo, hostlist = build_switched_cluster(networks, hosts)
    net = Network(topo, seed=seed, loss_rate=loss)
    nodes = deploy(HierarchicalNode, net, hostlist, config=None)
    return net, hostlist, nodes


class TestGracefulLeave:
    def test_leave_removes_instantly_everywhere(self):
        net, hosts, nodes = make()
        net.run(until=15.0)
        leaver = hosts[3]  # ordinary member
        nodes[leaver].leave()
        leave_time = net.now
        net.run(until=16.0)  # ONE second, far below the 5 s crash detection
        for h, node in nodes.items():
            if h != leaver:
                assert leaver not in node.view(), h
        downs = [
            r
            for r in net.trace.records(kind="member_down")
            if r.data["target"] == leaver
        ]
        assert max(r.time for r in downs) - leave_time < 0.5
        assert all(r.data["reason"] == "leave" for r in downs)

    def test_leave_produces_no_crash_detection_later(self):
        net, hosts, nodes = make()
        net.run(until=15.0)
        leaver = hosts[3]
        nodes[leaver].leave()
        net.run(until=40.0)
        downs = [
            r
            for r in net.trace.records(kind="member_down")
            if r.data["target"] == leaver and r.data["reason"] != "leave"
        ]
        assert downs == []

    def test_leader_leave_fails_over(self):
        net, hosts, nodes = make(3, 8, seed=3)
        net.run(until=15.0)
        leader = nodes[hosts[9]].leader_of(0)
        nodes[leader].leave()
        net.run(until=45.0)
        expect = sorted(set(hosts) - {leader})
        for h, node in nodes.items():
            if h != leader:
                assert node.view() == expect, h
        # The group has a working leader again.
        survivors = [h for h in hosts if "-n1-" in h and h != leader]
        assert nodes[survivors[0]].leader_of(0) in survivors

    def test_left_node_can_rejoin(self):
        net, hosts, nodes = make()
        net.run(until=15.0)
        leaver = hosts[3]
        nodes[leaver].leave()
        net.run(until=25.0)
        nodes[leaver].start()
        net.run(until=45.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)
        # Restart bumped the incarnation past the buried one.
        assert nodes[hosts[0]].directory.get(leaver).incarnation == 2

    def test_leave_under_loss_converges(self):
        net, hosts, nodes = make(3, 8, seed=5, loss=0.05)
        net.run(until=15.0)
        leaver = hosts[12]
        nodes[leaver].leave()
        net.run(until=45.0)
        expect = sorted(set(hosts) - {leaver})
        for h, node in nodes.items():
            if h != leaver:
                assert node.view() == expect, h

    def test_leave_when_not_running_is_noop(self):
        net, hosts, nodes = make()
        net.run(until=15.0)
        nodes[hosts[3]].stop()
        nodes[hosts[3]].leave()  # must not raise or send anything
        net.run(until=16.0)
