"""Integration tests for the hierarchical protocol on real topologies."""

import pytest

from repro.cluster import ServiceSpec
from repro.core import HierarchicalConfig, HierarchicalNode
from repro.net import Network
from repro.net.builders import (
    build_overlap_topology,
    build_router_tree,
    build_switched_cluster,
)
from repro.protocols import deploy


def make_cluster(networks=2, hosts=5, seed=1, loss=0.0, config=None, **net_kwargs):
    topo, hosts_list = build_switched_cluster(networks, hosts)
    net = Network(topo, seed=seed, loss_rate=loss, **net_kwargs)
    nodes = deploy(HierarchicalNode, net, hosts_list, config=config)
    return net, hosts_list, nodes


class TestFormation:
    def test_full_views_two_networks(self):
        net, hosts, nodes = make_cluster(2, 5)
        net.run(until=12.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)

    def test_one_leader_per_level0_group(self):
        net, hosts, nodes = make_cluster(3, 6)
        net.run(until=12.0)
        for netidx in range(3):
            members = [h for h in hosts if f"-n{netidx}-" in h]
            leaders = [h for h in members if nodes[h].is_leader(0)]
            assert len(leaders) == 1
            # Bully: lowest ID in the group wins.
            assert leaders[0] == min(members)

    def test_level0_leaders_form_level1_group(self):
        net, hosts, nodes = make_cluster(3, 6)
        net.run(until=12.0)
        l0_leaders = [h for h in hosts if nodes[h].is_leader(0)]
        l1_members = [h for h in hosts if 1 in nodes[h].levels()]
        assert sorted(l1_members) == sorted(l0_leaders)
        l1_leaders = [h for h in hosts if nodes[h].is_leader(1)]
        assert l1_leaders == [min(l0_leaders)]

    def test_non_leaders_stay_at_level0(self):
        net, hosts, nodes = make_cluster(2, 5)
        net.run(until=12.0)
        for h in hosts:
            if not nodes[h].is_leader(0):
                assert nodes[h].levels() == [0]

    def test_single_network_collapses_to_one_group(self):
        net, hosts, nodes = make_cluster(1, 8)
        net.run(until=12.0)
        assert all(len(n.view()) == 8 for n in nodes.values())
        leaders = [h for h in hosts if nodes[h].is_leader(0)]
        assert leaders == [min(hosts)]

    def test_hundred_nodes_converge(self):
        net, hosts, nodes = make_cluster(5, 20)
        net.run(until=15.0)
        assert all(len(n.view()) == 100 for n in nodes.values())

    def test_formation_under_packet_loss(self):
        net, hosts, nodes = make_cluster(5, 20, seed=5, loss=0.02)
        net.run(until=15.0)
        assert all(len(n.view()) == 100 for n in nodes.values())

    def test_services_visible_everywhere(self):
        topo, hosts = build_switched_cluster(2, 4)
        net = Network(topo, seed=1)
        services = {hosts[0]: [ServiceSpec.make("index", "1-3")]}
        nodes = deploy(HierarchicalNode, net, hosts, services=services)
        net.run(until=12.0)
        for node in nodes.values():
            found = node.directory.lookup_service("index", "2")
            assert [r.node_id for r in found] == [hosts[0]]

    def test_deterministic_given_seed(self):
        def run():
            net, hosts, nodes = make_cluster(2, 5, seed=9)
            net.run(until=12.0)
            return {h: (n.levels(), n.view()) for h, n in nodes.items()}

        assert run() == run()


class TestDeepHierarchy:
    def test_router_tree_multi_level(self):
        topo, hosts = build_router_tree(depth=3, branching=2, hosts_per_leaf=3)
        net = Network(topo, seed=2)
        cfg = HierarchicalConfig(max_ttl=7)
        nodes = deploy(HierarchicalNode, net, hosts, config=cfg)
        net.run(until=40.0)
        assert all(len(n.view()) == 12 for n in nodes.values())
        # Exactly one node chains to the top level.
        tops = [h for h in hosts if nodes[h].top_level == cfg.max_level]
        assert len(tops) == 1

    def test_group_formation_stops_at_max_ttl(self):
        net, hosts, nodes = make_cluster(2, 4, config=HierarchicalConfig(max_ttl=2))
        net.run(until=12.0)
        assert all(max(n.levels()) <= 1 for n in nodes.values())
        assert all(len(n.view()) == 8 for n in nodes.values())


class TestOverlap:
    """The Fig. 4 non-transitive topology."""

    def test_views_converge_despite_overlap(self):
        topo, hosts = build_overlap_topology(hosts_per_group=2)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts, config=HierarchicalConfig(max_ttl=4))
        net.run(until=25.0)
        assert all(len(n.view()) == 6 for n in nodes.values())

    def test_leader_sees_no_other_leader_invariant(self):
        topo, hosts = build_overlap_topology(hosts_per_group=2)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts, config=HierarchicalConfig(max_ttl=4))
        net.run(until=25.0)
        for h, node in nodes.items():
            for level in node.levels():
                if node.is_leader(level):
                    group = node._groups[level]
                    assert group.visible_leaders() == [], (
                        f"{h} leads level {level} but sees {group.visible_leaders()}"
                    )

    def test_update_reaches_members_beyond_sender_ttl(self):
        # B's group leader cannot reach C's group directly at level 2; a
        # failure in B's group must still become visible in C's group.
        topo, hosts = build_overlap_topology(hosts_per_group=3)
        net = Network(topo, seed=1)
        nodes = deploy(HierarchicalNode, net, hosts, config=HierarchicalConfig(max_ttl=4))
        net.run(until=25.0)
        victim = "dc0-gB-h2"
        assert not nodes[victim].is_leader(0)
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=60.0)
        for h, node in nodes.items():
            if h != victim:
                assert victim not in node.view(), f"{h} still sees {victim}"


class TestFailureDetection:
    def test_member_failure_detected_cluster_wide(self):
        net, hosts, nodes = make_cluster(5, 20)
        net.run(until=15.0)
        victim = hosts[25]
        assert not nodes[victim].is_leader(0)
        nodes[victim].stop()
        net.crash_host(victim)
        kill = net.now
        net.run(until=45.0)
        downs = [
            r for r in net.trace.records(kind="member_down") if r.data["target"] == victim
        ]
        assert {r.node for r in downs} == set(hosts) - {victim}
        cfg = HierarchicalConfig()
        detect = min(r.time for r in downs) - kill
        converge = max(r.time for r in downs) - kill
        assert cfg.fail_timeout <= detect <= cfg.fail_timeout + 2 * cfg.heartbeat_period
        # Convergence tracks detection closely (tree propagation is fast).
        assert converge - detect < 2 * cfg.heartbeat_period

    def test_no_false_positives_steady_state(self):
        net, hosts, nodes = make_cluster(3, 10)
        net.run(until=60.0)
        assert net.trace.records(kind="member_down") == []

    def test_no_false_positives_under_loss(self):
        net, hosts, nodes = make_cluster(3, 10, seed=11, loss=0.02)
        net.run(until=60.0)
        assert net.trace.records(kind="member_down") == []

    def test_views_exact_after_failure_with_loss(self):
        net, hosts, nodes = make_cluster(5, 20, seed=4, loss=0.02)
        net.run(until=15.0)
        victim = hosts[33]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=60.0)
        for h, node in nodes.items():
            if h != victim:
                assert node.view() == sorted(set(hosts) - {victim})

    def test_multiple_simultaneous_failures(self):
        net, hosts, nodes = make_cluster(4, 10)
        net.run(until=15.0)
        victims = [hosts[5], hosts[15], hosts[25]]
        for v in victims:
            nodes[v].stop()
            net.crash_host(v)
        net.run(until=60.0)
        expect = sorted(set(hosts) - set(victims))
        for h, node in nodes.items():
            if h not in victims:
                assert node.view() == expect


class TestLeaderFailover:
    def test_leader_death_backup_takes_over(self):
        net, hosts, nodes = make_cluster(3, 10)
        net.run(until=15.0)
        leader = nodes[hosts[10]].leader_of(0)
        backup = nodes[leader]._groups[0].my_backup
        nodes[leader].stop()
        net.crash_host(leader)
        net.run(until=60.0)
        # Some new leader exists in the group and the cluster view is exact.
        new_leader = nodes[hosts[11]].leader_of(0)
        assert new_leader is not None and new_leader != leader
        expect = sorted(set(hosts) - {leader})
        for h, node in nodes.items():
            if h != leader:
                assert node.view() == expect

    def test_leader_and_backup_both_die(self):
        net, hosts, nodes = make_cluster(3, 10, seed=6)
        net.run(until=15.0)
        leader = nodes[hosts[10]].leader_of(0)
        backup = nodes[leader]._groups[0].my_backup
        victims = {leader, backup}
        for v in victims:
            nodes[v].stop()
            net.crash_host(v)
        net.run(until=70.0)
        expect = sorted(set(hosts) - victims)
        for h, node in nodes.items():
            if h not in victims:
                assert node.view() == expect
        # A fresh election picked a leader in the affected group.
        survivors = [h for h in hosts if "-n1-" in h and h not in victims]
        assert nodes[survivors[0]].leader_of(0) in survivors

    def test_root_leader_death(self):
        net, hosts, nodes = make_cluster(3, 10, seed=2)
        net.run(until=15.0)
        root = next(h for h in hosts if nodes[h].is_leader(1))
        nodes[root].stop()
        net.crash_host(root)
        net.run(until=80.0)
        expect = sorted(set(hosts) - {root})
        for h, node in nodes.items():
            if h != root:
                assert node.view() == expect
        new_root = [h for h in hosts if h != root and nodes[h].is_leader(1)]
        assert len(new_root) == 1


class TestPartition:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_switch_failure_isolates_and_heals(self, seed):
        net, hosts, nodes = make_cluster(3, 10, seed=seed)
        net.run(until=15.0)
        net.fail_device("dc0-sw2")
        net.run(until=45.0)
        for h, node in nodes.items():
            if "-n2-" in h:
                assert node.view() == [h]  # fully isolated behind dead switch
            else:
                assert len(node.view()) == 20
                assert not any("-n2-" in v for v in node.view())
        net.recover_device("dc0-sw2")
        net.run(until=110.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)

    def test_restarted_node_rejoins_with_higher_incarnation(self):
        net, hosts, nodes = make_cluster(2, 5)
        net.run(until=12.0)
        victim = hosts[3]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=30.0)
        net.recover_host(victim)
        nodes[victim].start()
        net.run(until=60.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)
        observer = nodes[hosts[0]]
        assert observer.directory.get(victim).incarnation == 2


class TestDynamicValues:
    def test_update_value_propagates(self):
        net, hosts, nodes = make_cluster(2, 4)
        net.run(until=12.0)
        nodes[hosts[0]].update_value("Port", "8080")
        net.run(until=13.0)
        far = nodes[hosts[7]]  # other network
        assert far.directory.get(hosts[0]).attrs["Port"] == "8080"

    def test_register_service_at_runtime(self):
        net, hosts, nodes = make_cluster(2, 4)
        net.run(until=12.0)
        nodes[hosts[2]].register_service(ServiceSpec.make("cache", "0-1"))
        net.run(until=13.0)
        for node in nodes.values():
            assert [r.node_id for r in node.directory.lookup_service("cache")] == [hosts[2]]

    def test_delete_value_propagates(self):
        net, hosts, nodes = make_cluster(2, 4)
        net.run(until=12.0)
        nodes[hosts[0]].update_value("k", "v")
        net.run(until=13.0)
        nodes[hosts[0]].delete_value("k")
        net.run(until=14.0)
        assert "k" not in nodes[hosts[7]].directory.get(hosts[0]).attrs


class TestTraffic:
    def test_aggregate_bandwidth_linear_not_quadratic(self):
        def agg(networks):
            net, hosts, nodes = make_cluster(networks, 20)
            net.run(until=20.0)
            net.meter.reset()
            net.run(until=30.0)
            return net.meter.bytes(direction="rx")

        b2, b4 = agg(2), agg(4)
        # Doubling node count should ~double traffic (constant per node),
        # far from the 4x of a quadratic scheme.
        assert 1.6 < b4 / b2 < 2.6

    def test_per_node_bandwidth_constant_in_cluster_size(self):
        def per_node(networks):
            net, hosts, nodes = make_cluster(networks, 20)
            net.run(until=20.0)
            net.meter.reset()
            net.run(until=30.0)
            member = hosts[1]  # plain member, not a leader
            return net.meter.bytes(member, "rx")

        small, large = per_node(2), per_node(5)
        assert large / small < 1.3
