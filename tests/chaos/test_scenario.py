"""Acceptance tests for the canonical seeded chaos scenario.

The repo's chaos bar: asymmetric partition + 20% directional loss with
reordering/duplication + a mid-chaos crash/recover must run green under
the invariant checker, produce Fig. 13/14-style recovery curves, and be
byte-identical across the fast/slow fabric paths.
"""

import pytest

from repro.chaos import ChaosScenario


@pytest.fixture(scope="module")
def result():
    return ChaosScenario(seed=7).run()


class TestAcceptance:
    def test_runs_green_under_invariants(self, result):
        assert result.ok, result.violations
        assert result.false_failures == 0

    def test_failure_detected_and_converged(self, result):
        assert result.detection is not None
        assert result.convergence is not None
        assert 0 < result.detection <= result.convergence
        # Detection in the configured MAX_LOSS regime (5 x 1 Hz), plus
        # slack for chaos-path delays.
        assert result.detection < 10.0

    def test_recovery_curves_shape(self, result):
        # Fig. 13: the down-curve is cumulative and ends with every
        # observer having recorded the failure.
        counts = [c for _t, c in result.down_curve]
        assert counts == sorted(counts)
        assert counts[-1] == 3 * 8 - 1  # all survivors
        # Fig. 14: after recovery every observer re-adds the victim.
        assert result.up_curve
        assert result.up_curve[-1][1] == 3 * 8 - 1

    def test_chaos_actually_fired(self, result):
        assert result.fault_stats["drops"] > 0
        kinds = [k for _t, k, _d in result.failure_log]
        assert kinds.count("crash") == 1
        assert kinds.count("recover") == 1
        assert "partition" in kinds
        assert "partition_heal" in kinds

    def test_reproducible_per_seed(self, result):
        again = ChaosScenario(seed=7).run()
        assert again.trace_signature == result.trace_signature

    def test_fast_and_slow_fabric_paths_identical(self, result):
        # The determinism contract extends to chaos: fault draws happen at
        # send time in receiver-iteration order on both paths.
        slow = ChaosScenario(seed=7, use_fast_path=False).run()
        assert slow.trace_signature == result.trace_signature
        assert slow.violations == result.violations

    def test_different_seed_diverges(self, result):
        other = ChaosScenario(seed=8).run()
        assert other.trace_signature != result.trace_signature
