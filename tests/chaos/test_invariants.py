"""Unit tests for the chaos invariant checker."""

from repro.chaos import InvariantChecker
from repro.cluster.failures import FailureSchedule
from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def make(networks=2, per_net=3, seed=1, **checker_kwargs):
    topo, hosts = build_switched_cluster(networks, per_net)
    net = Network(topo, seed=seed)
    nodes = deploy(HierarchicalNode, net, hosts)
    checker = InvariantChecker(net, nodes, **checker_kwargs)
    return net, hosts, nodes, checker


class TestHealthyCluster:
    def test_clean_run_has_no_violations(self):
        net, hosts, nodes, checker = make()
        checker.start(period=2.0)
        net.run(until=40.0)
        checker.stop()
        checker.check_false_failures()
        checker.check_agreement()
        assert checker.ok, checker.violations
        assert checker.false_failures == []
        assert checker.summary()["ok"]

    def test_clean_crash_is_not_a_false_failure(self):
        net, hosts, nodes, checker = make()
        sched = FailureSchedule(net)
        for h in hosts:
            sched.register_stack(h, nodes[h])
        sched.crash_node_at(20.0, hosts[1])
        checker.start(period=2.0)
        net.run(until=50.0)
        checker.stop()
        checker.check_false_failures()
        # Removals of a genuinely dead node are correct behaviour.
        assert checker.false_failures == []
        assert not [v for v in checker.violations if v.invariant == "false_failures"]

    def test_agreement_detects_divergence(self):
        net, hosts, nodes, checker = make()
        net.run(until=30.0)
        # Force a wrong view on one node: drop a live peer.
        nodes[hosts[0]].directory.remove(hosts[1])
        out = checker.check_agreement()
        assert any(hosts[1] in v.detail for v in out)
        assert not checker.ok


class TestFalseFailures:
    def test_live_reachable_removal_counts(self):
        net, hosts, nodes, checker = make()
        net.run(until=15.0)
        # Fabricate the trace record a buggy node would emit.
        net.trace.emit(net.now, "member_down", node=hosts[0], target=hosts[1],
                       reason="timeout")
        assert len(checker.false_failures) == 1

    def test_severed_link_removal_does_not_count(self):
        net, hosts, nodes, checker = make()
        net.run(until=15.0)
        net.ensure_fault_plan().partition(
            [hosts[0]], [hosts[1]], start=0.0, symmetric=False
        )
        net.trace.emit(net.now, "member_down", node=hosts[0], target=hosts[1],
                       reason="timeout")
        assert checker.false_failures == []

    def test_downed_device_removal_does_not_count(self):
        net, hosts, nodes, checker = make()
        net.run(until=15.0)
        net.fail_device("dc0-sw1")  # partitions network 0 from network 1
        observer = hosts[0]           # in network 0
        target = hosts[-1]            # in network 1
        net.trace.emit(net.now, "member_down", node=observer, target=target,
                       reason="timeout")
        assert checker.false_failures == []

    def test_graceful_leave_does_not_count(self):
        net, hosts, nodes, checker = make()
        net.run(until=15.0)
        net.trace.emit(net.now, "member_down", node=hosts[0], target=hosts[1],
                       reason="leave")
        assert checker.false_failures == []

    def test_bound_enforced(self):
        net, hosts, nodes, checker = make(max_false_failures=2)
        net.run(until=15.0)
        for _ in range(3):
            net.trace.emit(net.now, "member_down", node=hosts[0],
                           target=hosts[1], reason="timeout")
        out = checker.check_false_failures()
        assert len(out) == 1
        assert out[0].invariant == "false_failures"


class TestResurrection:
    def test_zombie_entry_flagged_once(self):
        net, hosts, nodes, checker = make(zombie_grace=5.0)
        checker.start(period=1.0)
        net.run(until=20.0)
        victim = hosts[1]
        dead_record = nodes[victim].self_record()
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=40.0)
        # Re-plant the buried record in a live directory: a resurrection.
        nodes[hosts[0]].directory.upsert(dead_record, net.now)
        net.run(until=50.0)
        checker.stop()
        zombies = [v for v in checker.violations if v.invariant == "resurrection"]
        assert len(zombies) == 1  # flagged once, not once per tick
        assert victim in zombies[0].detail

    def test_restarted_node_not_flagged(self):
        net, hosts, nodes, checker = make(zombie_grace=5.0)
        sched = FailureSchedule(net)
        for h in hosts:
            sched.register_stack(h, nodes[h])
        sched.crash_node_at(20.0, hosts[1])
        sched.recover_node_at(30.0, hosts[1])
        checker.start(period=1.0)
        net.run(until=60.0)
        checker.stop()
        # The new incarnation's entries are legitimate everywhere.
        assert not [v for v in checker.violations if v.invariant == "resurrection"]


class TestDualLeaders:
    def test_stable_cluster_has_no_dual_leader_violation(self):
        net, hosts, nodes, checker = make(networks=3, per_net=4)
        checker.start(period=2.0)
        net.run(until=60.0)
        checker.stop()
        assert not [v for v in checker.violations if v.invariant == "dual_leader"]

    def test_forced_persistent_dual_leader_flagged(self):
        net, hosts, nodes, checker = make(networks=1, per_net=4,
                                          leader_streak=2)
        net.run(until=20.0)
        leaders = [h for h in hosts if nodes[h].is_leader(0)]
        assert len(leaders) == 1
        # Force a second, frozen flag-flier the election cannot demote.
        other = next(h for h in hosts if h not in leaders)
        group = nodes[other]._groups[0]
        group.i_am_leader = True
        nodes[other].stop = lambda: None  # keep it "running"
        for _ in range(3):
            checker.tick()
        dual = [v for v in checker.violations if v.invariant == "dual_leader"]
        assert len(dual) == 1
        assert "level 0" in dual[0].detail

    def test_partitioned_leaders_not_mutually_visible(self):
        net, hosts, nodes, checker = make(networks=1, per_net=4,
                                          leader_streak=1)
        net.run(until=20.0)
        leader = next(h for h in hosts if nodes[h].is_leader(0))
        other = next(h for h in hosts if h != leader)
        nodes[other]._groups[0].i_am_leader = True
        net.ensure_fault_plan().partition([leader], [other], start=0.0)
        for _ in range(3):
            checker.tick()
        # Severed pair: dual flags are expected, not a violation.
        assert not [v for v in checker.violations if v.invariant == "dual_leader"]
