"""Timer-wheel backend guards: cancel/re-arm semantics and recycling.

The wheel and the legacy heap both use *lazy deletion*: ``cancel()``
flags the queued entry and the run loop skips it when popped.  The
classic blind spot of that scheme is a timer that is cancelled and then
re-armed for the **same tick** — if the replacement reuses (or collides
with) the stale queue entry, the callback fires twice in one instant.
These tests pin the single-firing behaviour on both backends, plus the
free-list recycling contract for kernel-owned batch events.
"""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.engine import _FREE_MAX


@pytest.mark.parametrize("wheel", [False, True], ids=["heap", "wheel"])
class TestCancelRearmSameTick:
    """A cancelled recurring timer re-armed in the same tick fires once."""

    def test_external_cancel_and_rearm_same_tick(self, wheel):
        sim = Simulator(use_timer_wheel=wheel)
        fires = []
        old = sim.call_every(1.0, lambda: fires.append(("old", sim.now)))

        def swap():
            # Runs at t=3.0 *before* the old timer's queued firing: the
            # stale entry is already in the queue for this very tick.
            old.cancel()
            sim.call_every(
                1.0, lambda: fires.append(("new", sim.now)), first_delay=0.0
            )

        sim.call_at(3.0, swap, priority=-1)
        sim.run(until=5.0)
        assert fires == [
            ("old", 1.0),
            ("old", 2.0),
            ("new", 3.0),
            ("new", 4.0),
            ("new", 5.0),
        ]

    def test_cancel_from_inside_own_callback_with_replacement(self, wheel):
        sim = Simulator(use_timer_wheel=wheel)
        fires = []
        holder = {}

        def tick():
            fires.append(sim.now)
            if sim.now == 2.0:
                # Self-cancel mid-callback and re-arm a replacement with
                # the same period: the old series must not fire at 3.0.
                holder["t"].cancel()
                holder["t"] = sim.call_every(1.0, tick)

        holder["t"] = sim.call_every(1.0, tick)
        sim.run(until=4.0)
        assert fires == [1.0, 2.0, 3.0, 4.0]

    def test_cancelled_timer_never_fires_again(self, wheel):
        sim = Simulator(use_timer_wheel=wheel)
        fires = []
        timer = sim.call_every(1.0, lambda: fires.append(sim.now))
        sim.call_at(2.5, timer.cancel)
        sim.run(until=10.0)
        assert fires == [1.0, 2.0]

    def test_double_cancel_is_idempotent(self, wheel):
        sim = Simulator(use_timer_wheel=wheel)
        fires = []
        timer = sim.call_every(1.0, lambda: fires.append(sim.now))
        sim.run(until=1.0)
        timer.cancel()
        timer.cancel()
        sim.run(until=3.0)
        assert fires == [1.0]


class TestFreeListRecycling:
    """Kernel-owned batch events are recycled through the free-list."""

    def test_owned_event_object_reused_after_firing(self):
        sim = Simulator()
        seen = []
        first = sim.call_at_batch(1.0, seen.extend, ["a"], owned=True)
        sim.run(until=1.0)
        second = sim.call_at_batch(2.0, seen.extend, ["b"], owned=True)
        assert second is first  # same object, recycled via the free-list
        sim.run(until=2.0)
        assert seen == ["a", "b"]

    def test_unowned_event_never_recycled(self):
        sim = Simulator()
        first = sim.call_at_batch(1.0, lambda batch: None, ["a"])
        sim.run(until=1.0)
        second = sim.call_at_batch(2.0, lambda batch: None, ["b"])
        assert second is not first

    def test_cancelled_owned_event_does_not_fire_or_resurrect(self):
        sim = Simulator()
        seen = []
        ev = sim.call_at_batch(1.0, seen.extend, ["dead"], owned=True)
        ev.cancel()
        # New owned work scheduled for the same tick must not collide
        # with the cancelled entry still sitting in the queue.
        sim.call_at_batch(1.0, seen.extend, ["live"], owned=True)
        sim.run(until=5.0)
        assert seen == ["live"]

    def test_free_list_is_bounded(self):
        sim = Simulator()
        n = _FREE_MAX + 100
        for i in range(n):
            sim.call_at_batch(1.0, lambda batch: None, [i], owned=True)
        sim.run(until=1.0)
        assert len(sim._free) <= _FREE_MAX

    def test_recycled_event_keeps_trigger_semantics(self):
        # A recycled object must behave like a fresh one: new time, new
        # payload, cancellable before firing.
        sim = Simulator()
        seen = []
        first = sim.call_at_batch(1.0, seen.extend, ["a"], owned=True)
        sim.run(until=1.0)
        second = sim.call_at_batch(2.0, seen.extend, ["b"], owned=True)
        assert second is first
        second.cancel()
        sim.run(until=3.0)
        assert seen == ["a"]


class TestBackendSwitching:
    def test_switch_preserves_pending_events(self):
        sim = Simulator(use_timer_wheel=True)
        order = []
        sim.call_at(1.0, order.append, "a")
        sim.call_at(2.0, order.append, "b")
        sim.use_timer_wheel = False
        assert not sim.use_timer_wheel
        sim.call_at(1.5, order.append, "mid")
        sim.run(until=3.0)
        assert order == ["a", "mid", "b"]

    def test_switch_back_to_wheel_preserves_pending_events(self):
        sim = Simulator(use_timer_wheel=False)
        order = []
        sim.call_at(1.0, order.append, "a")
        timer = sim.call_every(1.0, order.append, "tick", first_delay=2.0)
        sim.use_timer_wheel = True
        sim.run(until=2.0)
        timer.cancel()
        sim.run(until=4.0)
        assert order == ["a", "tick"]

    def test_negative_clock_rejects_wheel(self):
        sim = Simulator(start_time=-1.0, use_timer_wheel=True)
        assert not sim.use_timer_wheel  # silently fell back at construction
        with pytest.raises(SimulationError):
            sim.use_timer_wheel = True

    def test_switch_mid_run_rejected(self):
        sim = Simulator(use_timer_wheel=True)

        def flip():
            sim.use_timer_wheel = False

        sim.call_at(1.0, flip)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)
