"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Event, Interrupt, Process, Simulator, SimulationError, Timeout


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(2.5)
        seen.append(sim.now)

    Process(sim, proc())
    sim.run()
    assert seen == [2.5]


def test_periodic_process():
    sim = Simulator()
    ticks = []

    def clock():
        while True:
            yield Timeout(1.0)
            ticks.append(sim.now)

    Process(sim, clock())
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_process_does_not_run_before_sim():
    sim = Simulator()
    seen = []

    def proc():
        seen.append(sim.now)
        yield Timeout(0)

    Process(sim, proc())
    assert seen == []  # not started synchronously
    sim.run()
    assert seen == [0.0]


def test_process_result():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return 42

    p = Process(sim, proc())
    sim.run()
    assert p.done
    assert p.result == 42


def test_result_before_done_raises():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    p = Process(sim, proc())
    with pytest.raises(SimulationError):
        _ = p.result


def test_join_process():
    sim = Simulator()
    seen = []

    def child():
        yield Timeout(3.0)
        return "payload"

    def parent():
        value = yield Process(sim, child(), name="child")
        seen.append((sim.now, value))

    Process(sim, parent(), name="parent")
    sim.run()
    assert seen == [(3.0, "payload")]


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    ev = Event(sim)
    seen = []

    def waiter():
        value = yield ev
        seen.append((sim.now, value))

    Process(sim, waiter())
    sim.call_at(2.0, ev.succeed, "hello")
    sim.run()
    assert seen == [(2.0, "hello")]


def test_event_multiple_waiters():
    sim = Simulator()
    ev = Event(sim)
    seen = []

    def waiter(tag):
        value = yield ev
        seen.append((tag, value))

    Process(sim, waiter("a"))
    Process(sim, waiter("b"))
    sim.call_at(1.0, ev.succeed, 7)
    sim.run()
    assert sorted(seen) == [("a", 7), ("b", 7)]


def test_yield_already_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = Event(sim)
    seen = []

    def late_waiter():
        yield Timeout(5.0)
        value = yield ev
        seen.append((sim.now, value))

    Process(sim, late_waiter())
    sim.call_at(1.0, ev.succeed, "early")
    sim.run()
    assert seen == [(5.0, "early")]


def test_event_double_succeed_raises():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        _ = ev.value
    ev.succeed(3)
    assert ev.value == 3


def test_interrupt_cancels_timeout():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield Timeout(100.0)
            seen.append("woke")
        except Interrupt as intr:
            seen.append(("interrupted", sim.now, intr.cause))

    p = Process(sim, sleeper())
    sim.call_at(2.0, p.interrupt, "die")
    sim.run()
    assert seen == [("interrupted", 2.0, "die")]
    # The 100 s timer must have been cancelled: clock should not jump ahead.
    assert sim.now == 2.0


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(1.0)

    p = Process(sim, quick())
    sim.run()
    p.interrupt()  # must not raise
    sim.run()


def test_interrupted_process_can_continue():
    sim = Simulator()
    seen = []

    def resilient():
        while True:
            try:
                yield Timeout(10.0)
                seen.append("slept")
                return
            except Interrupt:
                seen.append("retry")

    p = Process(sim, resilient())
    sim.call_at(1.0, p.interrupt)
    sim.run()
    assert seen == ["retry", "slept"]
    assert sim.now == 11.0


def test_exception_in_process_propagates():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("model bug")

    Process(sim, bad())
    with pytest.raises(RuntimeError, match="model bug"):
        sim.run()


def test_yield_garbage_fails():
    sim = Simulator()

    def bad():
        yield "not awaitable"

    Process(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def proc(tag, period):
        while sim.now < 3.0:
            yield Timeout(period)
            log.append((sim.now, tag))

    Process(sim, proc("fast", 1.0))
    Process(sim, proc("slow", 1.5))
    sim.run(until=10.0)
    assert (1.0, "fast") in log and (1.5, "slow") in log
    assert log == sorted(log, key=lambda x: x[0])
