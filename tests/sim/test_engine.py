"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_call_at_executes_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(2.0, order.append, "b")
    sim.call_at(1.0, order.append, "a")
    sim.call_at(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.call_at(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_priority_breaks_ties_before_seq():
    sim = Simulator()
    order = []
    sim.call_at(1.0, order.append, "late", priority=1)
    sim.call_at(1.0, order.append, "early", priority=-1)
    sim.run()
    assert order == ["early", "late"]


def test_call_after_relative_delay():
    sim = Simulator()
    seen = []
    sim.call_after(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.call_at(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [4.25]
    assert sim.now == 4.25


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.call_at(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_schedule_nan_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_at(math.nan, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-0.1, lambda: None)


def test_schedule_at_now_allowed():
    sim = Simulator()
    seen = []
    sim.call_at(0.0, seen.append, 1)
    sim.run()
    assert seen == [1]


def test_run_until_horizon_leaves_future_events():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "in")
    sim.call_at(5.0, seen.append, "out")
    sim.run(until=2.0)
    assert seen == ["in"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["in", "out"]


def test_run_until_inclusive():
    sim = Simulator()
    seen = []
    sim.call_at(2.0, seen.append, "edge")
    sim.run(until=2.0)
    assert seen == ["edge"]


def test_run_advances_clock_to_until_when_queue_drains():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    ev = sim.call_at(1.0, seen.append, "x")
    ev.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.call_at(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        sim.call_after(1.0, seen.append, "second")
        seen.append("first")

    sim.call_at(1.0, first)
    sim.run()
    assert seen == ["first", "second"]


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "a")
    sim.call_at(1.0, sim.stop)
    sim.call_at(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]
    sim.run()
    assert seen == ["a", "b"]


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_at(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "a")
    sim.call_at(2.0, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert seen == ["a", "b"]


def test_peek_skips_cancelled():
    sim = Simulator()
    ev = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_queue():
    sim = Simulator()
    assert sim.peek() is None


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.call_at(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_exception_in_callback_propagates():
    sim = Simulator()

    def boom():
        raise ValueError("boom")

    sim.call_at(1.0, boom)
    with pytest.raises(ValueError):
        sim.run()
    # The engine must be runnable again after an exception.
    seen = []
    sim.call_at(2.0, seen.append, "ok")
    sim.run()
    assert seen == ["ok"]


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda a, b: seen.append((a, b)), 1, "x")
    sim.run()
    assert seen == [(1, "x")]
