"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_call_at_executes_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(2.0, order.append, "b")
    sim.call_at(1.0, order.append, "a")
    sim.call_at(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.call_at(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_priority_breaks_ties_before_seq():
    sim = Simulator()
    order = []
    sim.call_at(1.0, order.append, "late", priority=1)
    sim.call_at(1.0, order.append, "early", priority=-1)
    sim.run()
    assert order == ["early", "late"]


def test_call_after_relative_delay():
    sim = Simulator()
    seen = []
    sim.call_after(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.call_at(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [4.25]
    assert sim.now == 4.25


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.call_at(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_schedule_nan_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_at(math.nan, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-0.1, lambda: None)


def test_schedule_at_now_allowed():
    sim = Simulator()
    seen = []
    sim.call_at(0.0, seen.append, 1)
    sim.run()
    assert seen == [1]


def test_run_until_horizon_leaves_future_events():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "in")
    sim.call_at(5.0, seen.append, "out")
    sim.run(until=2.0)
    assert seen == ["in"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["in", "out"]


def test_run_until_inclusive():
    sim = Simulator()
    seen = []
    sim.call_at(2.0, seen.append, "edge")
    sim.run(until=2.0)
    assert seen == ["edge"]


def test_run_advances_clock_to_until_when_queue_drains():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    ev = sim.call_at(1.0, seen.append, "x")
    ev.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.call_at(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        sim.call_after(1.0, seen.append, "second")
        seen.append("first")

    sim.call_at(1.0, first)
    sim.run()
    assert seen == ["first", "second"]


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "a")
    sim.call_at(1.0, sim.stop)
    sim.call_at(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]
    sim.run()
    assert seen == ["a", "b"]


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_at(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "a")
    sim.call_at(2.0, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert seen == ["a", "b"]


def test_peek_skips_cancelled():
    sim = Simulator()
    ev = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_queue():
    sim = Simulator()
    assert sim.peek() is None


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.call_at(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_exception_in_callback_propagates():
    sim = Simulator()

    def boom():
        raise ValueError("boom")

    sim.call_at(1.0, boom)
    with pytest.raises(ValueError):
        sim.run()
    # The engine must be runnable again after an exception.
    seen = []
    sim.call_at(2.0, seen.append, "ok")
    sim.run()
    assert seen == ["ok"]


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda a, b: seen.append((a, b)), 1, "x")
    sim.run()
    assert seen == [(1, "x")]


def test_sort_key_matches_ordering_fields():
    sim = Simulator()
    ev = sim.call_at(2.5, lambda: None, priority=3)
    assert ev.sort_key == (ev.time, ev.priority, ev.seq)


class TestCallAtBatch:
    def test_single_queue_entry_for_many_receivers(self):
        sim = Simulator()
        seen = []
        sim.call_at_batch(1.0, lambda batch: seen.extend(batch), ["a", "b", "c"])
        assert sim.pending_events == 1
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_shared_args_passed_after_batch(self):
        sim = Simulator()
        seen = []
        sim.call_at_batch(
            1.0, lambda batch, tag: seen.append((tuple(batch), tag)), [1, 2], "pkt"
        )
        sim.run()
        assert seen == [((1, 2), "pkt")]

    def test_ordering_against_call_at(self):
        sim = Simulator()
        order = []
        sim.call_at(1.0, order.append, "before")
        sim.call_at_batch(1.0, lambda batch: order.extend(batch), ["b1", "b2"])
        sim.call_at(1.0, order.append, "after")
        sim.run()
        assert order == ["before", "b1", "b2", "after"]

    def test_priority_respected(self):
        sim = Simulator()
        order = []
        sim.call_at_batch(1.0, lambda batch: order.extend(batch), ["late"], priority=1)
        sim.call_at(1.0, order.append, "early", priority=0)
        sim.run()
        assert order == ["early", "late"]

    def test_cancellable_as_a_unit(self):
        sim = Simulator()
        seen = []
        ev = sim.call_at_batch(1.0, lambda batch: seen.extend(batch), ["a", "b"])
        ev.cancel()
        sim.run()
        assert seen == []


class TestHorizonWithCancelledHeads:
    def test_cancelled_head_does_not_block_clock_advance(self):
        sim = Simulator()
        ev = sim.call_at(1.0, lambda: None)
        ev.cancel()
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0

    def test_cancelled_head_beyond_horizon_still_advances(self):
        sim = Simulator()
        ev = sim.call_at(10.0, lambda: None)
        ev.cancel()
        sim.call_at(20.0, lambda: None)
        assert sim.run(until=5.0) == 5.0

    def test_max_events_with_cancelled_head_keeps_clock_at_last_event(self):
        # Regression: a cancelled head entry with live work queued behind it
        # must not let run(until=...) jump the clock past that live work.
        sim = Simulator()
        seen = []
        sim.call_at(1.0, seen.append, "a")
        dead = sim.call_at(1.2, seen.append, "dead")
        sim.call_at(1.5, seen.append, "b")
        dead.cancel()
        sim.run(until=10.0, max_events=1)
        assert seen == ["a"]
        assert sim.now == 1.0  # live event at 1.5 still pending
        # Scheduling between now and the pending event must remain legal.
        sim.call_at(1.3, seen.append, "c")
        sim.run(until=10.0)
        assert seen == ["a", "c", "b"]
        assert sim.now == 10.0

    def test_max_events_draining_queue_advances_to_until(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, seen.append, "only")
        sim.run(until=4.0, max_events=1)
        assert seen == ["only"]
        assert sim.now == 4.0

    def test_max_events_with_only_cancelled_leftovers_advances(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, seen.append, "a")
        dead = sim.call_at(2.0, seen.append, "dead")
        dead.cancel()
        sim.run(until=4.0, max_events=1)
        assert seen == ["a"]
        assert sim.now == 4.0


class TestCallEvery:
    def test_fires_at_every_period(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_first_delay_offsets_only_first_firing(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), first_delay=0.25)
        sim.run(until=3.5)
        assert ticks == [0.25, 1.25, 2.25, 3.25]

    def test_args_forwarded(self):
        sim = Simulator()
        seen = []
        sim.call_every(1.0, seen.append, "x")
        sim.run(until=2.5)
        assert seen == ["x", "x"]

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        ticks = []
        timer = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.call_at(2.5, timer.cancel)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_cancel_from_inside_callback(self):
        sim = Simulator()
        ticks = []
        timer = None

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                timer.cancel()

        timer = sim.call_every(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_seq_interleaving_matches_self_rescheduling_callback(self):
        # The recurring timer must consume scheduler sequence numbers in
        # the same order as the legacy "callback reschedules itself"
        # idiom, or seeded traces would diverge between the two idioms.
        def run(recurring: bool):
            sim = Simulator()
            order = []

            if recurring:
                sim.call_every(1.0, lambda: order.append(("a", sim.now)))
            else:
                def tick():
                    order.append(("a", sim.now))
                    sim.call_after(1.0, tick)

                sim.call_after(1.0, tick)
            # A competitor scheduled *after* the timer at the same times:
            # FIFO order within a timestamp is the observable.
            def rival():
                order.append(("b", sim.now))
                sim.call_after(1.0, rival)

            sim.call_after(1.0, rival)
            sim.run(until=4.5)
            return order

        assert run(recurring=True) == run(recurring=False)

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.call_every(-1.0, lambda: None)

    def test_negative_first_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(1.0, lambda: None, first_delay=-0.1)
