"""Unit tests for RNG registry and tracing."""

from repro.sim import RngRegistry, Trace


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=42).stream("loss")
        b = RngRegistry(seed=42).stream("loss")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_different_streams(self):
        reg = RngRegistry(seed=42)
        xs = [reg.stream("loss").random() for _ in range(5)]
        ys = [reg.stream("jitter").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x")
        b = RngRegistry(seed=2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=0)
        assert reg.stream("a") is reg.stream("a")

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(seed=9)
        s1 = reg1.stream("loss")
        first = [s1.random() for _ in range(3)]

        reg2 = RngRegistry(seed=9)
        reg2.stream("new-consumer")  # extra stream created first
        s2 = reg2.stream("loss")
        assert [s2.random() for _ in range(3)] == first

    def test_spawn_deterministic(self):
        a = RngRegistry(seed=5).spawn("node1")
        b = RngRegistry(seed=5).spawn("node1")
        assert a.seed == b.seed
        assert a.stream("x").random() == b.stream("x").random()

    def test_spawn_children_differ(self):
        reg = RngRegistry(seed=5)
        assert reg.spawn("node1").seed != reg.spawn("node2").seed


class TestTrace:
    def test_emit_and_len(self):
        tr = Trace()
        tr.emit(1.0, "member_down", node="n1", target="n2")
        tr.emit(2.0, "member_up", node="n1", target="n3")
        assert len(tr) == 2

    def test_disabled_trace_records_nothing(self):
        tr = Trace(enabled=False)
        tr.emit(1.0, "x")
        assert len(tr) == 0

    def test_kind_filter(self):
        tr = Trace(kinds={"member_down"})
        tr.emit(1.0, "member_down", node="a")
        tr.emit(1.0, "packet_rx", node="a")
        assert len(tr) == 1

    def test_records_query_by_kind_and_node(self):
        tr = Trace()
        tr.emit(1.0, "a", node="n1")
        tr.emit(2.0, "a", node="n2")
        tr.emit(3.0, "b", node="n1")
        assert len(tr.records(kind="a")) == 2
        assert len(tr.records(node="n1")) == 2
        assert len(tr.records(kind="a", node="n1")) == 1

    def test_records_time_window(self):
        tr = Trace()
        for t in [1.0, 2.0, 3.0, 4.0]:
            tr.emit(t, "tick")
        assert [r.time for r in tr.records(since=2.0, until=3.0)] == [2.0, 3.0]

    def test_first_and_last_with_data_filter(self):
        tr = Trace()
        tr.emit(1.0, "member_down", node="n1", target="x")
        tr.emit(2.0, "member_down", node="n2", target="x")
        tr.emit(3.0, "member_down", node="n3", target="y")
        assert tr.first("member_down", target="x").time == 1.0
        assert tr.last("member_down", target="x").time == 2.0
        assert tr.first("member_down", target="z") is None

    def test_subscribe_live(self):
        tr = Trace()
        seen = []
        tr.subscribe(lambda rec: seen.append(rec.kind))
        tr.emit(1.0, "a")
        tr.emit(2.0, "b")
        assert seen == ["a", "b"]

    def test_clear(self):
        tr = Trace()
        tr.emit(1.0, "a")
        tr.clear()
        assert len(tr) == 0

    def test_iteration_order(self):
        tr = Trace()
        tr.emit(1.0, "a")
        tr.emit(2.0, "b")
        assert [r.kind for r in tr] == ["a", "b"]

    def test_first_last_filter_emitting_node(self):
        """Regression: ``node=`` used to be swallowed as a data filter.

        No record carries ``data["node"]`` (the emitter goes in the
        ``node`` field), so ``first(kind, node=...)`` silently matched
        nothing.  It now filters the emitting node like ``records()``.
        """
        tr = Trace()
        tr.emit(1.0, "member_down", node="n1", target="x")
        tr.emit(2.0, "member_down", node="n2", target="x")
        tr.emit(3.0, "member_down", node="n1", target="y")
        assert tr.first("member_down", node="n1").time == 1.0
        assert tr.last("member_down", node="n1").time == 3.0
        assert tr.first("member_down", node="n2", target="x").time == 2.0
        assert tr.first("member_down", node="n2", target="y") is None
        assert tr.first("member_down", node="absent") is None

    def test_subscribers_see_kind_filtered_emits(self):
        """Regression: the ``kinds`` filter used to starve subscribers.

        ``kinds`` restricts what the trace *stores*; live collectors
        must still see every enabled emit.
        """
        tr = Trace(kinds={"member_down"})
        seen = []
        tr.subscribe(lambda rec: seen.append(rec.kind))
        tr.emit(1.0, "member_down", node="a")
        tr.emit(2.0, "packet_rx", node="a")
        assert seen == ["member_down", "packet_rx"]
        assert [r.kind for r in tr] == ["member_down"]

    def test_disabled_trace_skips_subscribers(self):
        tr = Trace(enabled=False)
        seen = []
        tr.subscribe(seen.append)
        tr.emit(1.0, "x")
        assert seen == []

    def test_retain_false_streams_only(self):
        tr = Trace(retain=False)
        seen = []
        tr.subscribe(seen.append)
        tr.emit(1.0, "a")
        tr.emit(2.0, "b")
        assert len(tr) == 0
        assert [r.kind for r in seen] == ["a", "b"]
        assert tr.records(kind="a") == []

    def test_count_and_kind_names(self):
        tr = Trace()
        tr.emit(1.0, "a")
        tr.emit(2.0, "b")
        tr.emit(3.0, "a")
        assert tr.count("a") == 2
        assert tr.count("missing") == 0
        assert tr.kind_names() == ["a", "b"]
        tr.clear()
        assert tr.count("a") == 0

    def test_indexed_window_matches_linear_scan(self):
        """The bisected kind index must agree with a brute-force filter."""
        tr = Trace()
        for i in range(50):
            tr.emit(float(i) / 2, "tick" if i % 3 else "tock", node=f"n{i % 4}")
        for since, until in [(None, None), (5.0, None), (None, 20.0), (7.25, 18.0)]:
            expect = [
                r for r in tr
                if r.kind == "tick"
                and (since is None or r.time >= since)
                and (until is None or r.time <= until)
            ]
            assert tr.records(kind="tick", since=since, until=until) == expect

    def test_out_of_order_emits_fall_back_to_linear(self):
        tr = Trace()
        tr.emit(5.0, "a")
        tr.emit(1.0, "a")  # breaks monotonicity
        tr.emit(3.0, "a")
        assert [r.time for r in tr.records(kind="a", since=2.0, until=4.0)] == [3.0]
        assert [r.time for r in tr.records(kind="a")] == [5.0, 1.0, 3.0]
