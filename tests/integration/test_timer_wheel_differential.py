"""Differential guard: timer-wheel vs heap across the golden scenarios.

The wheel must be a pure queue-backend swap: for every golden scenario
(both hierarchical seeds, the chaos run, and the two baseline schemes)
the seeded trace with ``use_timer_wheel`` disabled must be **identical**
to the wheel trace — and therefore match the committed golden SHA-256,
which doubles each comparison as a cross-commit check.

The flag is flipped right after cluster construction (the backends
migrate pending events on switch), so the deployment timers armed at
construction are carried across — exactly the path a user toggling the
A/B flag exercises.
"""

import pytest

from repro.metrics.experiment import make_scheme_cluster
from tests.integration.test_determinism_guard import GOLDEN_SHA256, _trace_hash


def run_scheme_trace(scheme: str, seed: int, wheel: bool, chaos: bool = False):
    """The golden 3x10 crash scenario with a selectable queue backend."""
    net, hosts, nodes = make_scheme_cluster(scheme, 3, 10, seed=seed, loss_rate=0.02)
    net.sim.use_timer_wheel = wheel
    assert net.sim.use_timer_wheel == wheel
    if chaos:
        plan = net.ensure_fault_plan()
        plan.partition(hosts[:10], hosts[10:], start=15.0, until=30.0, symmetric=False)
        plan.add(
            src=hosts[10:20], dst=hosts[20:], loss=0.2, jitter=0.05,
            reorder=0.3, reorder_window=0.2, duplicate=0.1, dup_lag=0.05,
            start=15.0, until=30.0,
        )
    net.run(until=20.0)
    victim = hosts[5]
    nodes[victim].stop()
    net.crash_host(victim)
    net.run(until=50.0)
    return [(r.time, r.kind, r.node, r.data) for r in net.trace]


SCENARIOS = [
    ("hierarchical", 7, False),
    ("hierarchical", 8, False),
    ("hierarchical-chaos", 7, True),
    ("all-to-all", 7, False),
    ("gossip", 7, False),
]


@pytest.mark.parametrize(
    "golden_key,chaos",
    [((scheme, seed), chaos) for scheme, seed, chaos in SCENARIOS],
    ids=[f"{scheme}-seed{seed}" for scheme, seed, _ in SCENARIOS],
)
def test_wheel_and_heap_traces_identical(golden_key, chaos):
    scheme = golden_key[0].replace("-chaos", "")
    seed = golden_key[1]
    heap_trace = run_scheme_trace(scheme, seed, wheel=False, chaos=chaos)
    wheel_trace = run_scheme_trace(scheme, seed, wheel=True, chaos=chaos)
    assert len(heap_trace) > 100
    assert heap_trace == wheel_trace
    # Both backends must also still match the committed golden hash, so a
    # synchronized drift of the pair cannot slip through.
    assert _trace_hash(wheel_trace) == GOLDEN_SHA256[golden_key]
