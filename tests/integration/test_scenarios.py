"""Cross-cutting integration scenarios exercising several packages at once."""

import pytest

from repro.cluster import (
    ConsumerModule,
    FailureSchedule,
    LoadAwareBalancer,
    LoadReporter,
    LoadTracker,
    ProviderModule,
    ServiceSpec,
)
from repro.core import (
    HierarchicalConfig,
    HierarchicalNode,
    MClient,
    MService,
    MembershipProxy,
    install_proxy_forwarding,
)
from repro.net import Network
from repro.net.builders import build_switched_cluster, build_two_datacenters
from repro.protocols import deploy


class TestChurnSoak:
    """Rolling restarts under packet loss: the cluster never loses truth."""

    def test_rolling_restart_converges(self):
        topo, hosts = build_switched_cluster(3, 8)
        net = Network(topo, seed=21, loss_rate=0.01)
        nodes = deploy(HierarchicalNode, net, hosts)
        sched = FailureSchedule(net)
        for h, n in nodes.items():
            sched.register_stack(h, n)
        net.run(until=15.0)
        # Roll through six nodes: kill, wait, recover, staggered.
        t = 15.0
        for h in hosts[3:9]:
            sched.crash_node_at(t, h)
            sched.recover_node_at(t + 12.0, h)
            t += 4.0
        net.run(until=t + 60.0)
        for h, node in nodes.items():
            assert node.view() == sorted(hosts), h

    def test_flapping_node(self):
        topo, hosts = build_switched_cluster(2, 6)
        net = Network(topo, seed=22)
        nodes = deploy(HierarchicalNode, net, hosts)
        sched = FailureSchedule(net)
        flapper = hosts[4]
        sched.register_stack(flapper, nodes[flapper])
        net.run(until=15.0)
        t = 15.0
        for _ in range(3):  # die / return / die / return / die / return
            sched.crash_node_at(t, flapper)
            sched.recover_node_at(t + 8.0, flapper)
            t += 16.0
        net.run(until=t + 40.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)
        # Final incarnation reflects every restart.
        assert nodes[hosts[0]].directory.get(flapper).incarnation == 4


class TestServiceStackIntegration:
    """MService + providers + load-info + consumers end to end."""

    def test_directory_driven_invocation_with_load_reports(self):
        topo, hosts = build_switched_cluster(1, 6)
        net = Network(topo, seed=23)
        daemons = {h: MService(net, h) for h in hosts}
        for ms in daemons.values():
            ms.run()
        # Two replicas of a slow service.
        providers = {}
        for h in hosts[:2]:
            p = ProviderModule(net, h)
            p.register(ServiceSpec.make("svc", "0", service_time=0.4))
            p.start()
            providers[h] = p
            daemons[h].register_service("svc", "0")
            LoadReporter(net, h, p, report_period=0.25).start()
        net.run(until=12.0)

        tracker = LoadTracker(net, hosts[3], staleness=3.0)
        tracker.start()
        consumer = ConsumerModule(
            net,
            hosts[3],
            daemons[hosts[3]].node.directory,
            balancer=LoadAwareBalancer(tracker),
            request_timeout=5.0,
        )
        consumer.start()
        results = []
        for _ in range(12):
            consumer.invoke("svc", 0)._add_waiter(results.append)
        net.run(until=net.now + 10.0)
        assert all(r.ok for r in results)
        served = {h: providers[h].served for h in providers}
        # Load-aware balancing used both replicas.
        assert all(count > 0 for count in served.values())

    def test_mclient_view_matches_protocol_view(self):
        topo, hosts = build_switched_cluster(2, 5)
        net = Network(topo, seed=24)
        daemons = {h: MService(net, h) for h in hosts}
        for ms in daemons.values():
            ms.run()
        net.run(until=12.0)
        client = MClient(net, hosts[0], 999)
        assert client.members() == daemons[hosts[0]].node.view()


class TestThreeDataCenters:
    """The proxy protocol generalises beyond the paper's two DCs."""

    def make_three_dc(self, seed=25):
        from repro.net import Topology
        from repro.net.builders import build_switched_cluster as build

        t = Topology()
        dcs = ("dcA", "dcB", "dcC")
        hostlists = {}
        borders = []
        for dc in dcs:
            _t, hosts = build(1, 5, dc=dc, topo=t)
            hostlists[dc] = hosts
            border = f"{dc}-border"
            t.add_router(border, dc=dc)
            t.add_link(border, f"{dc}-sw0", latency=0.0002)
            borders.append(border)
        # Full WAN mesh.
        for i in range(len(borders)):
            for j in range(i + 1, len(borders)):
                t.add_link(borders[i], borders[j], latency=0.045, wan=True)
        net = Network(t, seed=seed)
        addrs = {dc: f"vip-{dc}" for dc in dcs}
        nodes = {}
        proxies = []
        for dc in dcs:
            nodes.update(deploy(HierarchicalNode, net, hostlists[dc]))
            for h in hostlists[dc][:2]:
                p = MembershipProxy(net, h, dc, addrs[dc], addrs, nodes[h])
                p.start()
                proxies.append(p)
        return net, dcs, hostlists, nodes, proxies, addrs

    def test_summaries_full_mesh(self):
        net, dcs, hostlists, nodes, proxies, addrs = self.make_three_dc()
        # A unique service in each DC.
        for dc in dcs:
            host = hostlists[dc][3]
            p = ProviderModule(net, host)
            p.register(ServiceSpec.make(f"svc-{dc}", "0", service_time=0.005))
            p.start()
            nodes[host].register_service(ServiceSpec.make(f"svc-{dc}", "0"))
        net.run(until=15.0)
        leaders = [p for p in proxies if p.is_leader]
        assert len(leaders) == 3
        for p in leaders:
            others = [d for d in dcs if d != p.dc]
            assert p.known_remote_dcs() == sorted(others)

    def test_forwarding_picks_a_dc_that_has_the_service(self):
        net, dcs, hostlists, nodes, proxies, addrs = self.make_three_dc()
        host = hostlists["dcC"][3]
        p = ProviderModule(net, host)
        p.register(ServiceSpec.make("rare", "0", service_time=0.005))
        p.start()
        nodes[host].register_service(ServiceSpec.make("rare", "0"))
        net.run(until=15.0)
        consumer = ConsumerModule(net, hostlists["dcA"][4], nodes[hostlists["dcA"][4]].directory)
        consumer.start()
        install_proxy_forwarding(consumer, "vip-dcA")
        results = []
        consumer.invoke("rare", 0)._add_waiter(results.append)
        net.run(until=net.now + 3.0)
        assert results[0].ok
        assert results[0].server == host


class TestSchemeInterchangeability:
    """All three schemes drive the same consumer stack unchanged."""

    @pytest.mark.parametrize("scheme", ["all-to-all", "gossip", "hierarchical"])
    def test_invocation_over_any_scheme(self, scheme):
        from repro.metrics import make_scheme_cluster

        net, hosts, nodes = make_scheme_cluster(scheme, 1, 6, seed=26)
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("echo", "0", service_time=0.002))
        provider.start()
        nodes[hosts[0]].register_service(ServiceSpec.make("echo", "0"))
        net.run(until=20.0)
        consumer = ConsumerModule(net, hosts[3], nodes[hosts[3]].directory)
        consumer.start()
        results = []
        consumer.invoke("echo", 0, "ping")._add_waiter(results.append)
        net.run(until=net.now + 3.0)
        assert results[0].ok
        assert results[0].value["echo"] == "ping"
