"""Sharded-vs-single differential suite: the determinism contract.

Mirrors ``test_timer_wheel_differential``: the same five pinned golden
scenarios, but the axis under test is the shard count.  The contract is
strict — the merged trace of a sharded run must be **byte-identical**
(same sha256) at shards=1, 2 and 4, and pinned against golden digests so
a semantics drift in the shard kernel cannot hide behind self-consistent
hashes.  One smoke test runs the multiprocessing (spawn) driver and pins
it to the in-process hash, covering the pickling boundary (payload
identity loss, descriptor transport, two-phase barrier protocol).

Note these goldens differ from the plain-engine goldens in
``test_determinism_guard``: the shard kernel orders same-instant events
by derivation keys, evaluates all cross-segment traffic at barriers and
draws loss from per-destination streams, so it is its own deterministic
universe — the plain goldens stay untouched.
"""

import pytest

from repro.shard import ShardScenario, run_scenario
from repro.shard.runner import trace_hash
from repro.shard.workers import run_scenario_mp

# (label, scheme, seed, chaos)
SCENARIOS = [
    ("hierarchical", "hierarchical", 7, False),
    ("hierarchical", "hierarchical", 8, False),
    ("hierarchical-chaos", "hierarchical", 7, True),
    ("all-to-all", "all-to-all", 7, False),
    ("gossip", "gossip", 7, False),
]

#: Pinned digests of the merged golden traces (shard kernel universe).
SHARD_GOLDEN = {
    ("hierarchical", 7): "3254e8cfdab09fd8b981b89cae4920d80149867c3f7476f502ff59072ee2d6e1",
    ("hierarchical", 8): "295067279537df5ccc4249244b76a3e542d39516251e138e1ecd4b07a845613e",
    ("hierarchical-chaos", 7): "a11e49e087747b445c532a984be90bea8de709357803349866469575ce672493",
    ("all-to-all", 7): "65b032568dddfe2b5d7668c9c970bbb5f99c96c91b1194e4919f626959827ed9",
    ("gossip", 7): "1db74e754d45d6ced601f7b009eb1c92e8edec5355ea53078dc52ff2e4f9bb52",
}


@pytest.mark.parametrize(
    "label,scheme,seed,chaos",
    SCENARIOS,
    ids=[f"{label}-{seed}" for label, _, seed, _ in SCENARIOS],
)
def test_shard_count_invariance(label, scheme, seed, chaos):
    """shards=1, 2 and 4 must produce byte-identical merged traces."""
    spec = ShardScenario.golden(scheme, seed, chaos=chaos)
    results = {n: run_scenario(spec, n) for n in (1, 2, 4)}
    base = results[1]
    assert len(base.trace) > 100, "scenario produced suspiciously little activity"
    assert trace_hash(base.trace) == base.hash
    for n in (2, 4):
        assert results[n].trace == base.trace, f"shards={n} trace diverged"
        assert results[n].hash == base.hash
        # The barrier schedule is shard-count invariant too (the window
        # cutter sees the same global state at every count).
        assert results[n].barriers == base.barriers
        assert results[n].exchanged == base.exchanged
    assert base.hash == SHARD_GOLDEN[(label, seed)], (
        "shard-kernel golden drifted — if the change is intentional, "
        "re-pin SHARD_GOLDEN for every scenario"
    )


def test_sharded_run_balances_events():
    """With 3 segments on 2 shards, both shards must execute real work."""
    spec = ShardScenario.golden("hierarchical", 7)
    res = run_scenario(spec, 2)
    assert len(res.events) == 2
    assert all(count > 1000 for count in res.events)
    # Surplus shards beyond the segment count own nothing and stay idle.
    res4 = run_scenario(spec, 4)
    assert res4.events[3] == 0


def test_multiprocessing_driver_matches_in_process():
    """The spawn-based driver must reproduce the in-process trace."""
    spec = ShardScenario.golden("hierarchical", 7)
    inproc = run_scenario(spec, 2)
    via_mp = run_scenario_mp(spec, 2)
    assert via_mp.hash == inproc.hash
    assert via_mp.trace == inproc.trace
    assert via_mp.events == inproc.events
    assert via_mp.barriers == inproc.barriers
    assert inproc.hash == SHARD_GOLDEN[("hierarchical", 7)]


def test_observability_merge_does_not_move_events():
    """Per-shard metrics merge on flush and never perturb the trace."""
    spec = ShardScenario.golden("hierarchical", 7)
    plain = run_scenario(spec, 2)
    observed = run_scenario(spec, 2, observe=True)
    assert observed.hash == plain.hash
    assert observed.registry is not None
    fam = observed.registry.get("repro_multicast_tx_packets_total")
    assert fam is not None
    assert fam.labels().get() > 0
