"""Regression: protocol correctness must not depend on payload identity.

The simulator hands payloads between nodes *by reference*, which let two
hot paths quietly key on object identity: the interned-heartbeat receive
short-circuit (``hb is peer.last_hb``) and the informer's stored-record
checks.  A real transport rebuilds every payload from bytes, so identity
never holds there.

These tests force the simulated transport to behave like a real one —
every multicast/unicast payload is pickled and unpickled in flight, so
receivers always see a *different but content-equal* object — and assert:

* the full 30-node crash scenario produces the **identical trace** to
  the by-reference run (the content fallbacks take exactly the same
  protocol actions); and
* the no-change receive fast path still engages (the
  ``hb_rx_fast`` counter moves), i.e. the fallback is
  :meth:`Heartbeat.same_as` content equality, not a silent downgrade to
  the slow path.
"""

import pickle

from repro.metrics.experiment import make_scheme_cluster
from repro.obs import MetricsRegistry, enable_observability


def run_crash_trace(roundtrip_payloads, seed=7, observe=False):
    """2x5-host hierarchical crash run; optionally pickle every payload."""
    net, hosts, nodes = make_scheme_cluster(
        "hierarchical", 2, 5, seed=seed, loss_rate=0.02
    )
    instruments = None
    if observe:
        handle = enable_observability(net, MetricsRegistry())
        instruments = handle.instruments
    if roundtrip_payloads:
        orig_multicast = net.multicast
        orig_unicast = net.unicast

        def multicast(src, channel, ttl, kind, payload, size):
            return orig_multicast(
                src,
                channel,
                ttl=ttl,
                kind=kind,
                payload=pickle.loads(pickle.dumps(payload)),
                size=size,
            )

        def unicast(src, dst, kind, payload, size, port="membership"):
            return orig_unicast(
                src,
                dst,
                kind=kind,
                payload=pickle.loads(pickle.dumps(payload)),
                size=size,
                port=port,
            )

        net.multicast = multicast  # instance attrs shadow the methods
        net.unicast = unicast
    net.run(until=20.0)
    victim = hosts[3]
    nodes[victim].stop()
    net.crash_host(victim)
    net.run(until=45.0)
    trace = [(r.time, r.kind, r.node, r.data) for r in net.trace]
    return trace, instruments


def test_pickled_payloads_trace_identical_to_by_reference():
    by_ref, _ = run_crash_trace(roundtrip_payloads=False)
    by_wire, _ = run_crash_trace(roundtrip_payloads=True)
    assert len(by_ref) > 100  # the run actually did protocol work
    assert by_ref == by_wire


def test_heartbeat_fast_path_survives_serialization():
    # Identity can never hold across a pickle trip; the interned
    # no-change short-circuit must still fire via content equality.
    _, instruments = run_crash_trace(roundtrip_payloads=True, observe=True)
    assert instruments is not None
    assert instruments.hb_rx_fast.get() > 0


def test_views_converge_with_serialized_payloads():
    # End-to-end sanity on top of the trace equivalence: every survivor
    # ends with the same complete view.
    net, hosts, nodes = make_scheme_cluster("hierarchical", 2, 5, seed=11)
    orig_multicast = net.multicast
    net.multicast = lambda src, channel, ttl, kind, payload, size: orig_multicast(
        src,
        channel,
        ttl=ttl,
        kind=kind,
        payload=pickle.loads(pickle.dumps(payload)),
        size=size,
    )
    net.run(until=25.0)
    views = {h: tuple(nodes[h].view()) for h in hosts}
    assert set(views.values()) == {tuple(sorted(hosts))}
