"""Determinism guards for the fast-path engines.

Both engines must be pure optimizations: for the same seed a run produces
the **identical** trace event sequence with the optimization on or off,
and repeated runs are bit-for-bit reproducible.

* **Delivery engine** (PR: perf engine) — cached multicast delivery plans,
  batched per-delay-bucket events, route caches
  (``MulticastFabric.use_fast_path``).
* **Protocol engine** (PR: protocol hot path) — interned heartbeats with
  the identity-based no-change receive path and deadline-heap directory
  purges (``HierarchicalNode(use_fast_path=...)``); recurring timers are
  now unconditional, owned by the ``repro.runtime`` layer.

This is the contract documented in docs/PERFORMANCE.md; if an
optimization ever changes scheduling order, loss-draw order, purge order,
or election timing, these tests are the tripwire.
"""

from repro.metrics.experiment import make_scheme_cluster


def run_30_node_trace(
    fast_path: bool, seed: int = 7, protocol_fast_path: bool = True
):
    """3 networks x 10 hosts, hierarchical scheme, crash + observe."""
    net, hosts, nodes = make_scheme_cluster(
        "hierarchical",
        3,
        10,
        seed=seed,
        loss_rate=0.02,
        use_fast_path=protocol_fast_path,
    )
    net.multicast_fabric.use_fast_path = fast_path
    net.run(until=20.0)
    victim = hosts[5]
    nodes[victim].stop()
    net.crash_host(victim)
    net.run(until=50.0)
    return [(r.time, r.kind, r.node, r.data) for r in net.trace]


def test_fast_path_trace_identical_to_legacy_path():
    fast = run_30_node_trace(fast_path=True)
    slow = run_30_node_trace(fast_path=False)
    assert len(fast) > 100  # the run actually did protocol work
    assert fast == slow


def test_protocol_fast_path_trace_identical_to_legacy_path():
    # Delivery engine fixed, protocol engine A/B: interned heartbeats,
    # the no-change receive path, heap purges and recurring timers must
    # not move a single trace event.
    fast = run_30_node_trace(fast_path=True, protocol_fast_path=True)
    slow = run_30_node_trace(fast_path=True, protocol_fast_path=False)
    assert len(fast) > 100
    assert fast == slow


def test_both_engines_off_trace_identical_to_both_on():
    # The two flags compose: all-legacy and all-fast bracket the matrix.
    all_fast = run_30_node_trace(fast_path=True, protocol_fast_path=True)
    all_slow = run_30_node_trace(fast_path=False, protocol_fast_path=False)
    assert all_fast == all_slow


def test_same_seed_reproduces_identical_trace():
    assert run_30_node_trace(fast_path=True) == run_30_node_trace(fast_path=True)


def test_different_seeds_diverge():
    # Sanity check that the guard is sensitive at all: with loss enabled,
    # different seeds must not produce the same trace.
    assert run_30_node_trace(True, seed=7) != run_30_node_trace(True, seed=8)


def run_30_node_chaos_trace(fast_path: bool, seed: int = 7):
    """The 30-node run with an active fault plan covering every effect.

    Chaos draws happen at send time in receiver-iteration order on both
    fabric paths, from the dedicated ``net.chaos`` stream — so the
    trace-identity contract must survive loss, jitter, reordering and
    duplication being injected mid-run.
    """
    net, hosts, nodes = make_scheme_cluster(
        "hierarchical", 3, 10, seed=seed, loss_rate=0.02
    )
    net.multicast_fabric.use_fast_path = fast_path
    plan = net.ensure_fault_plan()
    plan.partition(hosts[:10], hosts[10:], start=15.0, until=30.0, symmetric=False)
    plan.add(
        src=hosts[10:20], dst=hosts[20:], loss=0.2, jitter=0.05,
        reorder=0.3, reorder_window=0.2, duplicate=0.1, dup_lag=0.05,
        start=15.0, until=30.0,
    )
    net.run(until=20.0)
    victim = hosts[5]
    nodes[victim].stop()
    net.crash_host(victim)
    net.run(until=50.0)
    return [(r.time, r.kind, r.node, r.data) for r in net.trace]


def test_chaos_trace_identical_across_fabric_paths():
    fast = run_30_node_chaos_trace(fast_path=True)
    slow = run_30_node_chaos_trace(fast_path=False)
    assert len(fast) > 100
    assert fast == slow


def test_installing_inactive_fault_plan_changes_nothing():
    # A plan whose rules never match consumes zero randomness: the trace
    # must be byte-identical to a run with no plan at all.
    def run(with_plan):
        net, hosts, nodes = make_scheme_cluster(
            "hierarchical", 3, 10, seed=7, loss_rate=0.02
        )
        if with_plan:
            net.ensure_fault_plan().add(src="nonexistent-host", loss=1.0)
        net.run(until=30.0)
        return [(r.time, r.kind, r.node, r.data) for r in net.trace]

    assert run(False) == run(True)


def run_30_node_observed_trace(instrumented: bool, jsonl_path=None):
    """The 30-node crash run with the observability layer attached.

    Observability (PR: obs layer) extends the pure-optimization contract:
    instruments never draw randomness, never schedule protocol work, and
    sinks are passive subscribers — so enabling any of it must not move a
    single trace event.
    """
    from repro.obs import JsonlTraceSink, MetricsRegistry, enable_observability

    net, hosts, nodes = make_scheme_cluster(
        "hierarchical", 3, 10, seed=7, loss_rate=0.02
    )
    sink = None
    if instrumented:
        enable_observability(net, MetricsRegistry())
    if jsonl_path is not None:
        sink = net.trace.attach_sink(JsonlTraceSink(jsonl_path))
    net.run(until=20.0)
    victim = hosts[5]
    nodes[victim].stop()
    net.crash_host(victim)
    net.run(until=50.0)
    if sink is not None:
        sink.close()
    return [(r.time, r.kind, r.node, r.data) for r in net.trace]


def test_enabling_observability_changes_nothing():
    plain = run_30_node_observed_trace(instrumented=False)
    observed = run_30_node_observed_trace(instrumented=True)
    assert len(plain) > 100
    assert plain == observed


def test_jsonl_sink_attached_changes_nothing_and_is_byte_identical(tmp_path):
    plain = run_30_node_observed_trace(instrumented=False)
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    with_sink = run_30_node_observed_trace(instrumented=True, jsonl_path=a)
    assert plain == with_sink
    run_30_node_observed_trace(instrumented=True, jsonl_path=b)
    # Two same-seed runs stream byte-identical files.
    assert a.read_bytes() == b.read_bytes()
    assert len(a.read_bytes()) > 0


# ----------------------------------------------------------------------
# Golden traces: cross-refactor byte-identity
#
# The hashes below were captured on the monolithic pre-roles codebase
# (single-class ``HierarchicalNode``, protocols scheduling directly on
# ``repro.sim``).  The runtime/roles refactor — and any future structural
# change — must reproduce them bit-for-bit: a changed hash means the
# "pure code motion" claim is false (a scheduling call moved, an RNG draw
# was added or reordered, a trace emit shifted).  Unlike the pairwise A/B
# tests above, these pin the traces across *commits*, not just across
# flag settings within one commit.
# ----------------------------------------------------------------------

GOLDEN_SHA256 = {
    ("hierarchical", 7): (
        "3f4f977fca4e3f1a478b39e16063aa16fd6756f2ae86218aa803eb96498a5b04"
    ),
    ("hierarchical", 8): (
        "0bd99ad4617aa69698071c6a2d3d66e843f1c31d553e6b3efffd77b3e4e2faf9"
    ),
    ("hierarchical-chaos", 7): (
        "982bb17173d1ffbdc803db9f45f7cf58cdb3a43d22847478e164fe0bd771fa53"
    ),
    ("all-to-all", 7): (
        "324c46ec37a32b83763025db31bbb51dc4386b6826d592a0332d0cf64c359a45"
    ),
    ("gossip", 7): (
        "61fbe0d8e75fe052d575aa8fe3453f51be50659dec64a9f8d40cb668e8b2a589"
    ),
}


def _trace_hash(trace) -> str:
    import hashlib

    return hashlib.sha256(repr(trace).encode()).hexdigest()


def run_30_node_scheme_trace(scheme: str, seed: int = 7):
    """The baseline schemes through the same 3x10 crash scenario."""
    net, hosts, nodes = make_scheme_cluster(scheme, 3, 10, seed=seed, loss_rate=0.02)
    net.run(until=20.0)
    victim = hosts[5]
    nodes[victim].stop()
    net.crash_host(victim)
    net.run(until=50.0)
    return [(r.time, r.kind, r.node, r.data) for r in net.trace]


def test_golden_trace_hierarchical_seed7():
    assert _trace_hash(run_30_node_trace(True)) == GOLDEN_SHA256[("hierarchical", 7)]


def test_golden_trace_hierarchical_seed7_legacy_protocol_path():
    trace = run_30_node_trace(True, protocol_fast_path=False)
    assert _trace_hash(trace) == GOLDEN_SHA256[("hierarchical", 7)]


def test_golden_trace_hierarchical_seed8():
    trace = run_30_node_trace(True, seed=8)
    assert _trace_hash(trace) == GOLDEN_SHA256[("hierarchical", 8)]


def test_golden_trace_hierarchical_chaos():
    trace = run_30_node_chaos_trace(True)
    assert _trace_hash(trace) == GOLDEN_SHA256[("hierarchical-chaos", 7)]


def test_golden_trace_all_to_all():
    trace = run_30_node_scheme_trace("all-to-all")
    assert _trace_hash(trace) == GOLDEN_SHA256[("all-to-all", 7)]


def test_golden_trace_gossip():
    trace = run_30_node_scheme_trace("gossip")
    assert _trace_hash(trace) == GOLDEN_SHA256[("gossip", 7)]
