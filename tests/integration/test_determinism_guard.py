"""Determinism guard for the fast-path delivery engine.

The perf engine (cached delivery plans, batched per-delay-bucket events,
route caches) must be a pure optimization: for the same seed, a run
produces the **identical** trace event sequence as the legacy per-receiver
path, and repeated runs are bit-for-bit reproducible.  This is the
contract documented in docs/PERFORMANCE.md; if an optimization ever
changes scheduling order, loss-draw order, or delivery validation, this
test is the tripwire.
"""

from repro.metrics.experiment import make_scheme_cluster


def run_30_node_trace(fast_path: bool, seed: int = 7):
    """3 networks x 10 hosts, hierarchical scheme, crash + observe."""
    net, hosts, nodes = make_scheme_cluster(
        "hierarchical", 3, 10, seed=seed, loss_rate=0.02
    )
    net.multicast_fabric.use_fast_path = fast_path
    net.run(until=20.0)
    victim = hosts[5]
    nodes[victim].stop()
    net.crash_host(victim)
    net.run(until=50.0)
    return [(r.time, r.kind, r.node, r.data) for r in net.trace]


def test_fast_path_trace_identical_to_legacy_path():
    fast = run_30_node_trace(fast_path=True)
    slow = run_30_node_trace(fast_path=False)
    assert len(fast) > 100  # the run actually did protocol work
    assert fast == slow


def test_same_seed_reproduces_identical_trace():
    assert run_30_node_trace(fast_path=True) == run_30_node_trace(fast_path=True)


def test_different_seeds_diverge():
    # Sanity check that the guard is sensitive at all: with loss enabled,
    # different seeds must not produce the same trace.
    assert run_30_node_trace(True, seed=7) != run_30_node_trace(True, seed=8)
