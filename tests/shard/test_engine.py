"""Unit tests for the tuple-keyed shard simulator and trace merging."""

from repro.shard.engine import ShardSimulator
from repro.shard.netshard import ShardTrace
from repro.shard.runner import merge_keyed_records


def test_root_context_keys_children_in_order():
    sim = ShardSimulator()
    sim.set_root((3,))
    order = []
    ev_a = sim.call_after(1.0, order.append, "a")
    ev_b = sim.call_after(1.0, order.append, "b")
    assert ev_a.seq == (3, 0)
    assert ev_b.seq == (3, 1)
    sim.run(until=2.0)
    assert order == ["a", "b"]


def test_child_keys_extend_parent_key():
    sim = ShardSimulator()
    sim.set_root((0,))
    keys = []

    def parent():
        ev = sim.call_after(0.5, lambda: None)
        keys.append(ev.seq)
        ev2 = sim.call_after(0.5, lambda: None)
        keys.append(ev2.seq)

    root_ev = sim.call_after(1.0, parent)
    assert root_ev.seq == (0, 0)
    sim.run(until=1.0)
    # Children of the event keyed (0, 0) are (0, 0, 0) and (0, 0, 1).
    assert keys == [(0, 0, 0), (0, 0, 1)]


def test_same_time_events_run_in_key_order_regardless_of_insert_order():
    sim = ShardSimulator()
    order = []
    # Insert in reverse key order; ties at (time, priority) must resolve
    # by tuple key comparison, not insertion order.
    sim.call_at_keyed(1.0, (5, 0), order.append, "late-key")
    sim.call_at_keyed(1.0, (1, 7), order.append, "middle-key")
    sim.call_at_keyed(1.0, (1, 2, 9), order.append, "early-key")
    sim.run(until=1.0)
    # Lexicographic tuple order: (1, 2, 9) < (1, 7) < (5, 0).
    assert order == ["early-key", "middle-key", "late-key"]


def test_recurring_timer_rearms_stay_flat():
    sim = ShardSimulator()
    sim.set_root((0,))
    seen = []
    timer = sim.call_every(1.0, lambda: seen.append(timer._ev.seq))
    base = timer._ev.seq
    sim.run(until=3.5)
    assert len(seen) == 3
    # k-th re-arm is keyed base + (-1, k): constant depth, unique, and
    # ordered before any child key (children are >= 0).
    assert timer._ev.seq == base + (-1, 3)


def test_keyed_schedule_rejects_past_times():
    sim = ShardSimulator()
    sim.run(until=5.0)
    try:
        sim.call_at_keyed(4.0, (0,), lambda: None)
    except Exception as exc:
        assert "cannot schedule" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("past-time keyed schedule must raise")


def test_trace_merge_orders_by_time_then_key_then_emit_index():
    # Two shards emit interleaved records; the merge must follow
    # (time, priority, seq, emit_idx) — not shard id or append order.
    sim_a = ShardSimulator()
    sim_b = ShardSimulator()
    tr_a = ShardTrace(sim_a)
    tr_b = ShardTrace(sim_b)
    sim_a.set_root((1,))
    sim_b.set_root((0,))
    tr_a.emit(0.0, "x", node="a1")
    tr_b.emit(0.0, "x", node="b1")
    tr_b.emit(0.0, "x", node="b2")  # same context: emit_idx breaks the tie
    tr_a.emit(1.0, "x", node="a2")

    def pairs(tr):
        return [
            (key, (r.time, r.kind, r.node, r.data))
            for key, r in zip(tr.keys, tr.records())
        ]

    merged = merge_keyed_records([pairs(tr_a), pairs(tr_b)])
    assert [rec[2] for rec in merged] == ["b1", "b2", "a1", "a2"]


def test_emit_during_events_keys_by_event():
    sim = ShardSimulator()
    tr = ShardTrace(sim)
    sim.set_root((0,))

    def fire(tag):
        tr.emit(sim.now, "k", node=tag)

    sim.call_after(1.0, fire, "first")
    sim.call_after(1.0, fire, "second")
    sim.run(until=1.0)
    assert [k[2] for k in tr.keys] == [(0, 0), (0, 1)]
    # Emission counters reset per context.
    assert [k[3] for k in tr.keys] == [0, 0]
