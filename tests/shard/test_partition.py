"""Unit tests for the segment → shard partition map."""

import pytest

from repro.net.builders import build_switched_cluster, build_two_datacenters
from repro.shard.partition import ShardMap


def test_round_robin_segment_assignment():
    topo, hosts = build_switched_cluster(3, 4)
    smap = ShardMap.build(topo, 2)
    assert smap.shards == 2
    assert smap.segment_shard == (0, 1, 0)
    # Every host lands on its segment's shard; no host is lost.
    assert set(smap.host_shard) == set(hosts)
    for host in hosts:
        seg = topo.segment_of(host)
        assert smap.host_shard[host] == smap.segment_shard[seg]


def test_host_rank_is_global_insertion_order():
    topo, hosts = build_switched_cluster(3, 4)
    smap = ShardMap.build(topo, 2)
    assert [smap.host_rank[h] for h in hosts] == list(range(len(hosts)))


def test_local_hosts_keep_rank_order_and_cover_everything():
    topo, hosts = build_switched_cluster(3, 4)
    smap = ShardMap.build(topo, 2)
    seen = []
    for sid in range(2):
        local = smap.local_hosts(sid)
        assert local == sorted(local, key=smap.host_rank.__getitem__)
        assert all(smap.owns(sid, h) for h in local)
        seen.extend(local)
    assert sorted(seen) == sorted(hosts)


def test_more_shards_than_segments_leaves_surplus_empty():
    topo, hosts = build_switched_cluster(2, 3)
    smap = ShardMap.build(topo, 4)
    assert smap.segment_shard == (0, 1)
    assert smap.local_hosts(2) == []
    assert smap.local_hosts(3) == []


def test_single_shard_owns_all():
    topo, hosts = build_switched_cluster(3, 4)
    smap = ShardMap.build(topo, 1)
    assert set(smap.local_hosts(0)) == set(hosts)


def test_build_rejects_zero_shards():
    topo, _ = build_switched_cluster(2, 2)
    with pytest.raises(ValueError):
        ShardMap.build(topo, 0)


def test_boundary_classification_switched():
    topo, hosts = build_switched_cluster(2, 2)
    smap = ShardMap.build(topo, 2)
    # host <-> switch links are segment-internal.
    assert not smap.is_boundary(topo, "dc0-n0-h0", "dc0-sw0")
    # switch <-> core-router links are boundary (router endpoint).
    assert smap.is_boundary(topo, "dc0-sw0", "dc0-core")
    assert smap.is_boundary(topo, "dc0-core", "dc0-sw1")


def test_boundary_classification_wan():
    topo, a_hosts, b_hosts = build_two_datacenters(2, 2)
    smap = ShardMap.build(topo, 2)
    # WAN edge between border routers is a boundary however classified.
    assert topo.is_wan_edge("dcA-border", "dcB-border")
    assert smap.is_boundary(topo, "dcA-border", "dcB-border")
    # Hosts from different DCs land on shards by segment, and their
    # switch uplinks stay internal.
    assert not smap.is_boundary(topo, a_hosts[0], "dcA-sw0")


def test_cross_segment_lookahead_is_min_router_path():
    # 3x10 golden shape: LAN 0.1 ms, backbone 0.2 ms; the cheapest
    # cross-segment path crosses the core router via two backbone hops.
    topo, _ = build_switched_cluster(3, 10)
    assert topo.cross_segment_lookahead() == pytest.approx(0.0004)


def test_single_segment_lookahead_is_infinite():
    topo, _ = build_switched_cluster(1, 4)
    assert topo.cross_segment_lookahead() == float("inf")
