"""Unit tests for the metrics registry and exporters."""

import json

import pytest

from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    to_json,
    to_json_str,
    to_prometheus,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.add(4)
        assert c.get() == 5

    def test_gauge(self):
        g = Gauge()
        g.set(3.0)
        g.inc()
        g.dec(0.5)
        assert g.get() == 3.5

    def test_histogram_buckets_upper_inclusive(self):
        h = Histogram(bounds=(1.0, 5.0))
        for v in (0.5, 1.0, 3.0, 5.0, 100.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 109.5
        # (bound, cumulative): 1.0 catches 0.5 and 1.0; 5.0 adds 3.0, 5.0.
        assert h.cumulative() == [(1.0, 2), (5.0, 4), (float("inf"), 5)]

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.add(7)
        NULL_GAUGE.set(2.0)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.get() == 0
        assert NULL_GAUGE.get() == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_labeled_family_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("down_total", labels=("reason",))
        fam.labels(reason="timeout").inc()
        fam.labels(reason="timeout").inc()
        fam.labels(reason="leave").inc()
        assert fam.labels(reason="timeout").get() == 2
        assert fam.labels(reason="leave").get() == 1

    def test_wrong_label_names_raise(self):
        reg = MetricsRegistry()
        fam = reg.counter("down_total", labels=("reason",))
        with pytest.raises(ValueError):
            fam.labels(cause="timeout")
        with pytest.raises(ValueError):
            fam.labels()

    def test_len_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        reg.gauge("b")
        assert len(reg) == 2
        assert "a_total" in reg
        assert "missing" not in reg


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_tx_total", help="packets sent").add(12)
        reg.gauge("repro_depth").set(3.0)
        fam = reg.counter("repro_down_total", labels=("reason",))
        fam.labels(reason="timeout").inc()
        h = reg.histogram("repro_fanout", bounds=(1, 10))
        h.observe(1)
        h.observe(7)
        return reg

    def test_prometheus_text(self):
        text = to_prometheus(self._registry())
        assert "# HELP repro_tx_total packets sent" in text
        assert "# TYPE repro_tx_total counter" in text
        assert "repro_tx_total 12" in text
        assert "repro_depth 3" in text
        assert 'repro_down_total{reason="timeout"} 1' in text
        assert 'repro_fanout_bucket{le="1"} 1' in text
        assert 'repro_fanout_bucket{le="10"} 2' in text
        assert 'repro_fanout_bucket{le="+Inf"} 2' in text
        assert "repro_fanout_sum 8" in text
        assert "repro_fanout_count 2" in text
        assert text.endswith("\n")

    def test_json_round_trips(self):
        data = json.loads(to_json_str(self._registry()))
        assert data == to_json(self._registry())
        by_name = {fam["name"]: fam for fam in data}
        assert by_name["repro_tx_total"]["samples"][0]["value"] == 12
        hist = by_name["repro_fanout"]["samples"][0]
        assert hist["count"] == 2
        assert hist["buckets"][-1] == {"le": "+Inf", "count": 2}

    def test_export_is_deterministic(self):
        assert to_prometheus(self._registry()) == to_prometheus(self._registry())

    def test_default_size_buckets_ascending(self):
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(set(DEFAULT_SIZE_BUCKETS))
