"""Unit tests for streaming trace sinks."""

import pytest

from repro.obs import JsonlTraceSink, RingBufferSink, read_jsonl_trace
from repro.sim import Trace


class TestJsonlTraceSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tr = Trace()
        with JsonlTraceSink(path) as sink:
            tr.attach_sink(sink)
            tr.emit(1.0, "member_down", node="n1", target="n2", reason="timeout")
            tr.emit(2.5, "member_up", node="n1", target="n2")
        assert sink.records_written == 2
        back = read_jsonl_trace(path)
        assert [(r.time, r.kind, r.node, r.data) for r in back] == [
            (r.time, r.kind, r.node, r.data) for r in tr
        ]

    def test_closed_sink_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        tr = Trace()
        tr.attach_sink(sink)
        with pytest.raises(ValueError):
            tr.emit(1.0, "x")

    def test_streaming_without_retention(self, tmp_path):
        """retain=False + sink: records reach disk, nothing accumulates."""
        path = tmp_path / "t.jsonl"
        tr = Trace(retain=False)
        with JsonlTraceSink(path) as sink:
            tr.attach_sink(sink)
            for t in range(100):
                tr.emit(float(t), "tick", node="n")
        assert len(tr) == 0
        assert sink.records_written == 100
        assert len(read_jsonl_trace(path)) == 100


class TestRingBufferSink:
    def test_keeps_most_recent(self):
        tr = Trace(retain=False)
        ring = tr.attach_sink(RingBufferSink(capacity=3))
        for t in range(5):
            tr.emit(float(t), "tick")
        assert len(ring) == 3
        assert [r.time for r in ring] == [2.0, 3.0, 4.0]
        assert ring.records_seen == 5
        assert ring.dropped == 2

    def test_records_by_kind(self):
        ring = RingBufferSink(capacity=10)
        tr = Trace(retain=False)
        tr.attach_sink(ring)
        tr.emit(1.0, "a")
        tr.emit(2.0, "b")
        tr.emit(3.0, "a")
        assert [r.time for r in ring.records(kind="a")] == [1.0, 3.0]
        ring.clear()
        assert len(ring) == 0
        assert ring.records_seen == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)
