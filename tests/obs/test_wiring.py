"""Integration tests: instruments wired into a live cluster."""

from repro.metrics.experiment import make_scheme_cluster
from repro.obs import (
    MetricsRegistry,
    NOOP,
    disable_observability,
    enable_observability,
)


def _trace_signature(net):
    return [
        (r.time, r.kind, r.node, tuple(sorted(r.data.items())))
        for r in net.trace
    ]


class TestWiring:
    def test_components_default_to_noop(self):
        net, _, _ = make_scheme_cluster("hierarchical", 1, 3, seed=3)
        assert net.obs is NOOP
        assert net.multicast_fabric.obs is NOOP
        assert net.transport.obs is NOOP
        assert not NOOP.enabled

    def test_enable_shares_one_bundle(self):
        net, _, _ = make_scheme_cluster("hierarchical", 1, 3, seed=3)
        handle = enable_observability(net)
        assert net.obs is handle.instruments
        assert net.multicast_fabric.obs is handle.instruments
        assert net.transport.obs is handle.instruments
        assert handle.instruments.enabled
        disable_observability(net)
        assert net.obs is NOOP

    def test_counters_fire_during_run(self):
        net, _, _ = make_scheme_cluster("hierarchical", 2, 4, seed=5)
        handle = enable_observability(net, MetricsRegistry())
        net.run(until=20.0)
        inst = handle.instruments
        assert inst.hb_tx.get() > 0
        assert inst.hb_rx.get() > 0
        assert inst.mc_tx.get() > 0
        assert inst.mc_rx.get() > 0
        assert inst.updates_tx.get() > 0
        assert inst.updates_rx.get() > 0
        assert inst.member_up.get() > 0
        assert inst.elections.get() > 0
        # Fast path interns unchanged heartbeats: steady state is mostly
        # the no-change branch.
        assert inst.hb_rx_fast.get() > 0
        assert inst.hb_rx_fast.get() <= inst.hb_rx.get()

    def test_member_down_labeled_by_reason(self):
        net, hosts, nodes = make_scheme_cluster("hierarchical", 1, 4, seed=5)
        handle = enable_observability(net)
        net.run(until=15.0)
        victim = hosts[-1]
        nodes[victim].stop()
        net.run(until=35.0)
        fam = handle.instruments.member_down
        down = fam.labels(reason="timeout").get()
        assert down >= len(hosts) - 1
        downs = net.trace.records(kind="member_down")
        assert down == sum(1 for r in downs if r.data["reason"] == "timeout")

    def test_enabling_does_not_move_the_trace(self):
        """Instrumentation must not perturb a seeded run (determinism)."""
        net_a, _, _ = make_scheme_cluster("hierarchical", 2, 4, seed=9)
        net_a.run(until=25.0)
        net_b, _, _ = make_scheme_cluster("hierarchical", 2, 4, seed=9)
        enable_observability(net_b, MetricsRegistry())
        net_b.run(until=25.0)
        assert _trace_signature(net_a) == _trace_signature(net_b)

    def test_kernel_sampler(self):
        net, _, _ = make_scheme_cluster("hierarchical", 1, 3, seed=3)
        handle = enable_observability(net)
        handle.start_sampler(period=1.0)
        net.run(until=10.0)
        handle.stop_sampler()
        inst = handle.instruments
        assert inst.sim_now.get() >= 9.0
        assert inst.sim_events.get() > 0

    def test_export_from_live_run(self):
        net, _, _ = make_scheme_cluster("hierarchical", 1, 3, seed=3)
        handle = enable_observability(net)
        net.run(until=15.0)
        text = handle.to_prometheus()
        assert "repro_heartbeats_tx_total" in text
        assert "# TYPE repro_multicast_fanout histogram" in text
        names = {fam["name"] for fam in handle.to_json()}
        assert "repro_sim_now_seconds" in names


class TestChaosRunnerRegistry:
    def test_chaos_run_records_outcomes(self):
        from repro.chaos.runner import ChaosScenario

        registry = MetricsRegistry()
        scenario = ChaosScenario(
            seed=3, networks=2, hosts_per_network=4,
            warmup=10.0, chaos_start=12.0, chaos_end=22.0, quiesce=25.0,
            registry=registry,
        )
        result = scenario.run()
        inst = registry.get("repro_detection_seconds")
        assert inst is not None
        if result.detection is not None:
            assert inst.labels().count == 1
        fault_fam = registry.get("repro_fault_effects_total")
        assert fault_fam is not None
        total_effects = sum(c.get() for _, c in fault_fam.children())
        assert total_effects == sum(result.fault_stats.values())
