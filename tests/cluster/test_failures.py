"""Tests for the scripted failure schedule."""

import pytest

from repro.cluster import FailureSchedule
from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def make(n=6, seed=1):
    topo, hosts = build_switched_cluster(2, n // 2)
    net = Network(topo, seed=seed)
    nodes = deploy(HierarchicalNode, net, hosts)
    sched = FailureSchedule(net)
    for h, node in nodes.items():
        sched.register_stack(h, node)
    return net, hosts, nodes, sched


class TestFailureSchedule:
    def test_crash_stops_stack_and_host(self):
        net, hosts, nodes, sched = make()
        sched.crash_node_at(12.0, hosts[0])
        net.run(until=13.0)
        assert not nodes[hosts[0]].running
        assert not net.topo.is_up(hosts[0])
        assert sched.log == [(12.0, "crash", hosts[0])]

    def test_recover_restarts_stack(self):
        net, hosts, nodes, sched = make()
        sched.crash_node_at(12.0, hosts[0])
        sched.recover_node_at(30.0, hosts[0])
        net.run(until=50.0)
        assert nodes[hosts[0]].running
        assert net.topo.is_up(hosts[0])
        # The restarted node rejoins and regains the full view.
        assert len(nodes[hosts[0]].view()) == len(hosts)
        assert [entry[1] for entry in sched.log] == ["crash", "recover"]

    def test_device_failure_and_recovery(self):
        net, hosts, nodes, sched = make()
        sched.fail_device_at(15.0, "dc0-sw1")
        sched.recover_device_at(40.0, "dc0-sw1")
        net.run(until=90.0)
        assert net.topo.is_up("dc0-sw1")
        assert all(len(n.view()) == len(hosts) for n in nodes.values())
        kinds = [entry[1] for entry in sched.log]
        assert kinds == ["device_fail", "device_recover"]

    def test_stop_start_single_service(self):
        net, hosts, nodes, sched = make()
        target = nodes[hosts[1]]
        sched.stop_service_at(12.0, hosts[1], target)
        sched.start_service_at(25.0, hosts[1], target)
        net.run(until=40.0)
        assert target.running
        # Host never went down, only the daemon: device stayed up.
        assert net.topo.is_up(hosts[1])

    def test_multiple_stacks_per_host(self):
        net, hosts, nodes, sched = make()

        class Recorder:
            def __init__(self):
                self.events = []

            def start(self):
                self.events.append("start")

            def stop(self):
                self.events.append("stop")

        extra = Recorder()
        sched.register_stack(hosts[0], extra)
        sched.crash_node_at(12.0, hosts[0])
        sched.recover_node_at(20.0, hosts[0])
        net.run(until=25.0)
        assert extra.events == ["stop", "start"]

    def test_full_scenario_converges(self):
        net, hosts, nodes, sched = make()
        sched.crash_node_at(14.0, hosts[2])
        sched.crash_node_at(16.0, hosts[4])
        sched.recover_node_at(35.0, hosts[2])
        net.run(until=70.0)
        expect = sorted(set(hosts) - {hosts[4]})
        for h, node in nodes.items():
            if h != hosts[4]:
                assert node.view() == expect
