"""Tests for the scripted failure schedule."""

import random

import pytest

from repro.cluster import FailureSchedule
from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def make(n=6, seed=1):
    topo, hosts = build_switched_cluster(2, n // 2)
    net = Network(topo, seed=seed)
    nodes = deploy(HierarchicalNode, net, hosts)
    sched = FailureSchedule(net)
    for h, node in nodes.items():
        sched.register_stack(h, node)
    return net, hosts, nodes, sched


class TestFailureSchedule:
    def test_crash_stops_stack_and_host(self):
        net, hosts, nodes, sched = make()
        sched.crash_node_at(12.0, hosts[0])
        net.run(until=13.0)
        assert not nodes[hosts[0]].running
        assert not net.topo.is_up(hosts[0])
        assert sched.log == [(12.0, "crash", hosts[0])]

    def test_recover_restarts_stack(self):
        net, hosts, nodes, sched = make()
        sched.crash_node_at(12.0, hosts[0])
        sched.recover_node_at(30.0, hosts[0])
        net.run(until=50.0)
        assert nodes[hosts[0]].running
        assert net.topo.is_up(hosts[0])
        # The restarted node rejoins and regains the full view.
        assert len(nodes[hosts[0]].view()) == len(hosts)
        assert [entry[1] for entry in sched.log] == ["crash", "recover"]

    def test_device_failure_and_recovery(self):
        net, hosts, nodes, sched = make()
        sched.fail_device_at(15.0, "dc0-sw1")
        sched.recover_device_at(40.0, "dc0-sw1")
        net.run(until=90.0)
        assert net.topo.is_up("dc0-sw1")
        assert all(len(n.view()) == len(hosts) for n in nodes.values())
        kinds = [entry[1] for entry in sched.log]
        assert kinds == ["device_fail", "device_recover"]

    def test_stop_start_single_service(self):
        net, hosts, nodes, sched = make()
        target = nodes[hosts[1]]
        sched.stop_service_at(12.0, hosts[1], target)
        sched.start_service_at(25.0, hosts[1], target)
        net.run(until=40.0)
        assert target.running
        # Host never went down, only the daemon: device stayed up.
        assert net.topo.is_up(hosts[1])

    def test_multiple_stacks_per_host(self):
        net, hosts, nodes, sched = make()

        class Recorder:
            def __init__(self):
                self.events = []

            def start(self):
                self.events.append("start")

            def stop(self):
                self.events.append("stop")

        extra = Recorder()
        sched.register_stack(hosts[0], extra)
        sched.crash_node_at(12.0, hosts[0])
        sched.recover_node_at(20.0, hosts[0])
        net.run(until=25.0)
        assert extra.events == ["stop", "start"]

    def test_full_scenario_converges(self):
        net, hosts, nodes, sched = make()
        sched.crash_node_at(14.0, hosts[2])
        sched.crash_node_at(16.0, hosts[4])
        sched.recover_node_at(35.0, hosts[2])
        net.run(until=70.0)
        expect = sorted(set(hosts) - {hosts[4]})
        for h, node in nodes.items():
            if h != hosts[4]:
                assert node.view() == expect


class TestCrashSemantics:
    def test_crashed_node_emits_no_packets_at_or_after_crash(self):
        net, hosts, nodes, sched = make()
        victim = hosts[1]
        sched.crash_node_at(12.0, victim)
        # Probe scheduled at the exact crash instant but AFTER the crash
        # event (later seq at the same time runs later): the tx counter
        # must never move again from this point on.
        tx_at_crash = {}

        def snapshot():
            tx_at_crash["packets"] = net.meter.packets(victim, "tx")

        net.sim.call_at(12.0, snapshot)
        net.run(until=40.0)
        assert net.meter.packets(victim, "tx") == tx_at_crash["packets"]

    def test_crash_is_not_a_graceful_leave(self):
        # A kill must look like silence, not like a leave announcement.
        net, hosts, nodes, sched = make()
        victim = hosts[1]
        sched.crash_node_at(12.0, victim)
        net.run(until=40.0)
        reasons = {
            r.data.get("reason")
            for r in net.trace.records(kind="member_down")
            if r.data.get("target") == victim
        }
        assert "leave" not in reasons
        assert reasons  # it was detected, the hard way


class TestFlapDevice:
    def test_flap_schedules_alternating_cycles(self):
        net, hosts, nodes, sched = make()
        cycles = sched.flap_device("dc0-sw1", first_down=15.0,
                                   down_for=3.0, up_for=5.0, until=35.0)
        assert cycles == 3  # 15, 23, 31
        net.run(until=60.0)
        kinds = [k for _t, k, d in sched.log if d == "dc0-sw1"]
        assert kinds == ["device_fail", "device_recover"] * 3
        assert net.topo.is_up("dc0-sw1")

    def test_flap_validates_durations(self):
        net, hosts, nodes, sched = make()
        with pytest.raises(ValueError):
            sched.flap_device("dc0-sw1", 10.0, down_for=0.0, up_for=1.0, until=20.0)
        with pytest.raises(ValueError):
            sched.flap_device("dc0-sw1", 10.0, down_for=1.0, up_for=-1.0, until=20.0)

    def test_cluster_survives_flapping(self):
        net, hosts, nodes, sched = make()
        sched.flap_device("dc0-sw1", first_down=20.0,
                          down_for=4.0, up_for=6.0, until=50.0)
        net.run(until=100.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)


class TestPartitionAt:
    def test_asymmetric_partition_and_heal(self):
        net, hosts, nodes, sched = make()
        side_a = hosts[:3]   # network 0
        side_b = hosts[3:]   # network 1
        # The mute side's leader is purged per level timeouts, but its
        # subtree entries ride the relayed-timeout backstop (20 s), so the
        # window must outlast both.
        sched.partition_at(20.0, side_a, side_b, heal_at=55.0, symmetric=False)
        net.run(until=50.0)
        # side_b purged the mute side_a...
        for h in side_b:
            assert all(a not in nodes[h].view() for a in side_a)
        # ...but side_a still hears side_b (reverse direction flows).
        for a in side_a:
            assert any(b in nodes[a].view() for b in side_b)
        net.run(until=100.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)

    def test_partition_markers_logged(self):
        net, hosts, nodes, sched = make()
        sched.partition_at(20.0, hosts[:3], hosts[3:], heal_at=30.0)
        net.run(until=35.0)
        kinds = [k for _t, k, _d in sched.log]
        assert kinds == ["partition", "partition_heal"]


class TestChaosStorm:
    def test_storm_is_deterministic_per_seed(self):
        def plan(seed):
            net, hosts, nodes, sched = make()
            return sched.schedule_chaos_storm(
                random.Random(seed), hosts, start=20.0, duration=30.0, events=5
            )

        assert plan(3) == plan(3)
        assert plan(3) != plan(4)

    def test_storm_outages_never_overlap_per_host(self):
        net, hosts, nodes, sched = make()
        storm = sched.schedule_chaos_storm(
            random.Random(9), hosts, start=20.0, duration=40.0, events=12,
            min_downtime=3.0, max_downtime=8.0,
        )
        assert storm == sorted(storm)
        by_host = {}
        for t, host, down in storm:
            by_host.setdefault(host, []).append((t, t + down))
        for intervals in by_host.values():
            intervals.sort()
            for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
                assert hi1 < lo2  # strictly disjoint, with the min_gap margin

    def test_storm_validates_arguments(self):
        net, hosts, nodes, sched = make()
        with pytest.raises(ValueError):
            sched.schedule_chaos_storm(random.Random(0), [], 0.0, 10.0)
        with pytest.raises(ValueError):
            sched.schedule_chaos_storm(random.Random(0), hosts, 0.0, 10.0,
                                       min_downtime=5.0, max_downtime=2.0)

    def test_cluster_survives_storm(self):
        net, hosts, nodes, sched = make()
        storm = sched.schedule_chaos_storm(
            random.Random(5), hosts, start=20.0, duration=30.0, events=6,
            min_downtime=4.0, max_downtime=10.0,
        )
        assert storm
        net.run(until=120.0)
        for node in nodes.values():
            assert node.running
            assert node.view() == sorted(hosts)
