"""Unit tests for provider/consumer modules, load balancing, gateway."""

import pytest

from repro.cluster import (
    ConsumerModule,
    Directory,
    MachineInfo,
    NodeRecord,
    ProviderModule,
    RandomChoice,
    RandomPolling,
    ServiceSpec,
)
from repro.cluster.gateway import Gateway
from repro.net import Network
from repro.net.builders import build_switched_cluster


def make_cluster(n=4):
    topo, hosts = build_switched_cluster(1, n)
    net = Network(topo, seed=3)
    return net, hosts


def make_directory(owner, providers, service="index", partitions=(1,)):
    d = Directory(owner)
    for p in providers:
        d.upsert(
            NodeRecord(p, services={service: frozenset(partitions)}), now=0.0
        )
    return d


def run_invocation(net, consumer, *args, **kwargs):
    results = []
    ev = consumer.invoke(*args, **kwargs)
    ev._add_waiter(results.append)
    net.run(until=10.0)
    assert len(results) == 1
    return results[0]


class TestMachineInfo:
    def test_roundtrip(self):
        info = MachineInfo(cpu_mhz=2000, mem_mb=4096)
        assert MachineInfo.from_attrs(info.to_attrs()) == info

    def test_from_attrs_ignores_extras(self):
        attrs = MachineInfo().to_attrs()
        attrs["Port"] = "8080"
        assert MachineInfo.from_attrs(attrs) == MachineInfo()


class TestServiceSpec:
    def test_make_with_string_partitions(self):
        s = ServiceSpec.make("index", "1-3", Port="8080")
        assert s.partitions == frozenset({1, 2, 3})
        assert s.params == {"Port": "8080"}

    def test_partition_spec_canonical(self):
        s = ServiceSpec.make("index", [3, 1, 2])
        assert s.partition_spec() == "1,2,3"


class TestProviderConsumer:
    def test_successful_invocation(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("index", "1", service_time=0.01))
        provider.start()
        directory = make_directory(hosts[1], [hosts[0]])
        consumer = ConsumerModule(net, hosts[1], directory)
        consumer.start()
        result = run_invocation(net, consumer, "index", 1, {"q": "hello"})
        assert result.ok
        assert result.server == hosts[0]
        assert result.value == {"partition": 1, "echo": {"q": "hello"}}
        assert result.latency >= 0.01

    def test_custom_handler(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(
            ServiceSpec.make("sq", "0"), handler=lambda part, data: data * data
        )
        provider.start()
        consumer = ConsumerModule(net, hosts[1], make_directory(hosts[1], [hosts[0]], "sq", (0,)))
        consumer.start()
        result = run_invocation(net, consumer, "sq", 0, 7)
        assert result.ok and result.value == 49

    def test_unknown_service_fails(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("index", "1"))
        provider.start()
        consumer = ConsumerModule(net, hosts[1], make_directory(hosts[1], [hosts[0]], "cache", (1,)))
        consumer.start()
        result = run_invocation(net, consumer, "cache", 1)
        assert not result.ok and result.error == "no_such_service"

    def test_wrong_partition_fails(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("index", "1"))
        provider.start()
        consumer = ConsumerModule(net, hosts[1], make_directory(hosts[1], [hosts[0]], "index", (2,)))
        consumer.start()
        result = run_invocation(net, consumer, "index", 2)
        assert not result.ok and result.error == "no_such_service"

    def test_unavailable_when_directory_empty(self):
        net, hosts = make_cluster()
        consumer = ConsumerModule(net, hosts[1], Directory(hosts[1]))
        consumer.start()
        result = run_invocation(net, consumer, "index", 1)
        assert not result.ok and result.error == "unavailable"

    def test_unavailable_handler_hook(self):
        net, hosts = make_cluster()
        consumer = ConsumerModule(net, hosts[1], Directory(hosts[1]))
        consumer.start()
        calls = []

        def forward(service, partition, data, completion):
            calls.append((service, partition))
            from repro.cluster.consumer import InvocationResult

            completion.succeed(InvocationResult(True, "remote", None, 0.09, "remote-dc"))
            return True

        consumer.unavailable_handler = forward
        result = run_invocation(net, consumer, "index", 1)
        assert result.ok and result.value == "remote"
        assert calls == [("index", 1)]

    def test_timeout_on_dead_provider(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("index", "1"))
        provider.start()
        consumer = ConsumerModule(
            net, hosts[1], make_directory(hosts[1], [hosts[0]]), request_timeout=0.5
        )
        consumer.start()
        net.crash_host(hosts[0])
        result = run_invocation(net, consumer, "index", 1)
        assert not result.ok and result.error == "timeout"
        assert result.latency == pytest.approx(0.5)

    def test_provider_load_tracks_inflight(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("slow", "1", service_time=1.0))
        provider.start()
        consumer = ConsumerModule(net, hosts[1], make_directory(hosts[1], [hosts[0]], "slow", (1,)))
        consumer.start()
        for _ in range(3):
            consumer.invoke("slow", 1)
        net.run(until=0.5)
        assert provider.load == 3
        net.run(until=3.0)
        assert provider.load == 0
        assert provider.served == 3

    def test_provider_stop_drops_requests(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("index", "1"))
        provider.start()
        provider.stop()
        consumer = ConsumerModule(
            net, hosts[1], make_directory(hosts[1], [hosts[0]]), request_timeout=0.2
        )
        consumer.start()
        result = run_invocation(net, consumer, "index", 1)
        assert not result.ok and result.error == "timeout"


class TestLoadBalancers:
    def test_random_choice_uniform_coverage(self):
        import random

        rng = random.Random(1)
        lb = RandomChoice()
        picks = {lb.choose(["a", "b", "c"], rng) for _ in range(100)}
        assert picks == {"a", "b", "c"}

    def test_random_choice_empty_raises(self):
        import random

        with pytest.raises(ValueError):
            RandomChoice().choose([], random.Random(1))

    def test_random_polling_targets_bounded(self):
        import random

        lb = RandomPolling(d=2)
        targets = lb.poll_targets(["a", "b", "c", "d"], random.Random(1))
        assert len(targets) == 2

    def test_random_polling_picks_least_loaded(self):
        import random

        lb = RandomPolling(d=2)
        pick = lb.pick_from_loads({"a": 5, "b": 1}, ["a", "b"], random.Random(1))
        assert pick == "b"

    def test_random_polling_no_replies_falls_back(self):
        import random

        lb = RandomPolling(d=2)
        pick = lb.pick_from_loads({}, ["a", "b"], random.Random(1))
        assert pick in {"a", "b"}

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            RandomPolling(d=0)

    def test_polling_end_to_end_prefers_idle_replica(self):
        net, hosts = make_cluster(4)
        busy = ProviderModule(net, hosts[0])
        idle = ProviderModule(net, hosts[1])
        for p in (busy, idle):
            p.register(ServiceSpec.make("index", "1", service_time=0.5))
            p.start()
        directory = make_directory(hosts[2], [hosts[0], hosts[1]])
        consumer = ConsumerModule(
            net, hosts[2], directory, balancer=RandomPolling(d=2), poll_timeout=0.02
        )
        consumer.start()
        # Saturate the busy provider directly.
        loader = ConsumerModule(net, hosts[3], make_directory(hosts[3], [hosts[0]]))
        loader.start()
        for _ in range(5):
            loader.invoke("index", 1)
        results = []
        ev = consumer.invoke("index", 1)
        ev._add_waiter(results.append)
        net.run(until=5.0)
        assert results[0].ok
        assert results[0].server == hosts[1]


class TestGateway:
    def test_fixed_rate_issues_requests(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("index", "1", service_time=0.001))
        provider.start()
        consumer = ConsumerModule(net, hosts[1], make_directory(hosts[1], [hosts[0]]))
        consumer.start()
        gw = Gateway(
            net.sim,
            executor=consumer.invoke,
            workload=lambda seq: {"service": "index", "partition": 1, "data": seq},
            rate=10.0,
        )
        gw.start()
        net.run(until=2.0)
        gw.stop()
        net.run(until=3.0)
        assert gw.stats.issued == 19  # first at t=0.1, last at t=1.9
        assert gw.stats.completed == 19
        assert gw.stats.failed == 0

    def test_stats_series(self):
        net, hosts = make_cluster()
        provider = ProviderModule(net, hosts[0])
        provider.register(ServiceSpec.make("index", "1", service_time=0.001))
        provider.start()
        consumer = ConsumerModule(net, hosts[1], make_directory(hosts[1], [hosts[0]]))
        consumer.start()
        gw = Gateway(
            net.sim,
            executor=consumer.invoke,
            workload=lambda seq: {"service": "index", "partition": 1},
            rate=5.0,
        )
        gw.start()
        net.run(until=3.0)
        series = dict(gw.stats.throughput_series())
        assert series[1] == 5
        rts = dict(gw.stats.response_time_series())
        assert all(0.0 < v < 0.01 for v in rts.values())

    def test_failures_recorded(self):
        net, hosts = make_cluster()
        consumer = ConsumerModule(net, hosts[1], Directory(hosts[1]))
        consumer.start()
        gw = Gateway(
            net.sim,
            executor=consumer.invoke,
            workload=lambda seq: {"service": "missing"},
            rate=4.0,
        )
        gw.start()
        net.run(until=1.1)
        assert gw.stats.failed == 4
        assert gw.stats.completed == 0

    def test_poisson_arrivals(self):
        net, hosts = make_cluster()
        consumer = ConsumerModule(net, hosts[1], Directory(hosts[1]))
        consumer.start()
        gw = Gateway(
            net.sim,
            executor=consumer.invoke,
            workload=lambda seq: {"service": "missing"},
            rate=50.0,
            jitter_rng=net.rng.stream("arrivals"),
        )
        gw.start()
        net.run(until=10.0)
        assert 350 < gw.stats.issued < 650  # ~500 expected

    def test_invalid_rate(self):
        net, _ = make_cluster()
        with pytest.raises(ValueError):
            Gateway(net.sim, executor=None, workload=None, rate=0.0)
