"""Tests for the interest-scoped load-information protocol."""

import pytest

from repro.cluster import (
    ConsumerModule,
    Directory,
    LoadAwareBalancer,
    LoadReporter,
    LoadTracker,
    NodeRecord,
    ProviderModule,
    ServiceSpec,
)
from repro.net import Network
from repro.net.builders import build_switched_cluster


def make_setup(n=5, seed=1, service_time=0.5):
    topo, hosts = build_switched_cluster(1, n)
    net = Network(topo, seed=seed)
    providers = {}
    reporters = {}
    for h in hosts[:2]:
        p = ProviderModule(net, h)
        p.register(ServiceSpec.make("svc", "0", service_time=service_time))
        p.start()
        providers[h] = p
        r = LoadReporter(net, h, p, report_period=0.25, interest_ttl=5.0)
        r.start()
        reporters[h] = r
    directory = Directory(hosts[2])
    for h in hosts[:2]:
        directory.upsert(NodeRecord(h, services={"svc": frozenset({0})}), now=0.0)
    return net, hosts, providers, reporters, directory


def run_invoke(net, consumer, *args, **kwargs):
    out = []
    consumer.invoke(*args, **kwargs)._add_waiter(out.append)
    net.run(until=net.now + 3.0)
    return out[0]


class TestLoadReporter:
    def test_interest_established_by_request(self):
        net, hosts, providers, reporters, directory = make_setup()
        consumer = ConsumerModule(net, hosts[2], directory)
        consumer.start()
        run_invoke(net, consumer, "svc", 0)
        interested = set()
        for r in reporters.values():
            interested.update(r.interested())
        assert hosts[2] in interested

    def test_interest_expires(self):
        net, hosts, providers, reporters, directory = make_setup()
        consumer = ConsumerModule(net, hosts[2], directory)
        consumer.start()
        result = run_invoke(net, consumer, "svc", 0)
        server = result.server
        net.run(until=net.now + 10.0)  # past interest_ttl
        assert reporters[server].interested() == []

    def test_reports_flow_to_interested_only(self):
        net, hosts, providers, reporters, directory = make_setup()
        tracker = LoadTracker(net, hosts[2], staleness=3.0)
        tracker.start()
        bystander = LoadTracker(net, hosts[3], staleness=3.0)
        bystander.start()
        consumer = ConsumerModule(net, hosts[2], directory)
        consumer.start()
        result = run_invoke(net, consumer, "svc", 0)
        net.run(until=net.now + 1.0)
        assert tracker.load_of(result.server) is not None
        assert bystander.known_servers() == []

    def test_reported_load_tracks_inflight(self):
        net, hosts, providers, reporters, directory = make_setup(service_time=2.0)
        tracker = LoadTracker(net, hosts[2], staleness=3.0)
        tracker.start()
        consumer = ConsumerModule(net, hosts[2], directory, request_timeout=5.0)
        consumer.start()
        # Saturate one provider with 3 slow requests.
        target = hosts[0]
        for _ in range(3):
            consumer._dispatch(target, "svc", 0, None, _DummyEvent(net), net.now, 0)
        net.run(until=net.now + 1.0)
        assert tracker.load_of(target) == 3

    def test_stale_entries_expire(self):
        net, hosts, providers, reporters, directory = make_setup()
        tracker = LoadTracker(net, hosts[2], staleness=1.0)
        tracker.start()
        consumer = ConsumerModule(net, hosts[2], directory)
        consumer.start()
        result = run_invoke(net, consumer, "svc", 0)
        server = result.server
        reporters[server].stop()  # reports cease
        net.run(until=net.now + 3.0)
        assert tracker.load_of(server) is None

    def test_stop_is_clean(self):
        net, hosts, providers, reporters, directory = make_setup()
        for r in reporters.values():
            r.stop()
            r.stop()
        net.run(until=net.now + 2.0)
        assert all(r.reports_sent == 0 for r in reporters.values())


class _DummyEvent:
    def __init__(self, net):
        from repro.sim.process import Event

        self._ev = Event(net.sim)

    def succeed(self, value=None):
        pass


class TestLoadAwareBalancer:
    def test_prefers_least_loaded_known(self):
        net, hosts, providers, reporters, directory = make_setup(service_time=2.0)
        tracker = LoadTracker(net, hosts[2], staleness=5.0)
        tracker.start()
        balancer = LoadAwareBalancer(tracker)
        consumer = ConsumerModule(net, hosts[2], directory, balancer=balancer, request_timeout=10.0)
        consumer.start()
        # Prime interest + cache on both providers.
        run_invoke(net, consumer, "svc", 0)
        run_invoke(net, consumer, "svc", 0)
        net.run(until=net.now + 1.0)
        # Saturate provider 0 directly.
        for _ in range(4):
            consumer._dispatch(hosts[0], "svc", 0, None, _DummyEvent(net), net.now, 0)
        net.run(until=net.now + 0.6)  # let a report cycle pass
        assert tracker.load_of(hosts[0]) >= 4
        # Now the balancer must route to the idle provider.
        rng = net.rng.stream("test")
        picks = {balancer.choose([hosts[0], hosts[1]], rng) for _ in range(20)}
        assert hosts[1] in picks
        assert all(p == hosts[1] for p in picks if p != hosts[0])
        counts = [balancer.choose([hosts[0], hosts[1]], rng) for _ in range(50)]
        assert counts.count(hosts[1]) > 40

    def test_unknown_candidates_fall_back_to_random(self):
        net, hosts, providers, reporters, directory = make_setup()
        tracker = LoadTracker(net, hosts[2], staleness=5.0)
        tracker.start()
        balancer = LoadAwareBalancer(tracker)
        rng = net.rng.stream("test")
        picks = {balancer.choose([hosts[0], hosts[1]], rng) for _ in range(30)}
        assert picks == {hosts[0], hosts[1]}

    def test_empty_candidates_rejected(self):
        net, hosts, providers, reporters, directory = make_setup()
        tracker = LoadTracker(net, hosts[2])
        balancer = LoadAwareBalancer(tracker)
        with pytest.raises(ValueError):
            balancer.choose([], net.rng.stream("x"))
