"""Unit tests for the yellow-page directory."""

import pytest

from repro.cluster import Directory, NodeRecord, parse_partitions


def rec(node_id, incarnation=0, services=None, attrs=None):
    return NodeRecord(
        node_id=node_id,
        incarnation=incarnation,
        services={k: frozenset(v) for k, v in (services or {}).items()},
        attrs=attrs or {},
    )


class TestParsePartitions:
    def test_single(self):
        assert parse_partitions("3") == frozenset({3})

    def test_range(self):
        assert parse_partitions("1-3") == frozenset({1, 2, 3})

    def test_mixed(self):
        assert parse_partitions("1-3,5") == frozenset({1, 2, 3, 5})

    def test_whitespace(self):
        assert parse_partitions(" 1 , 2-3 ") == frozenset({1, 2, 3})

    def test_empty(self):
        assert parse_partitions("") == frozenset()

    def test_descending_range_rejected(self):
        with pytest.raises(ValueError):
            parse_partitions("3-1")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_partitions("1,,2")


class TestNodeRecord:
    def test_supersedes_same_or_higher_incarnation(self):
        a0, a1 = rec("a", 0), rec("a", 1)
        assert a1.supersedes(a0)
        assert a0.supersedes(a0)
        assert not a0.supersedes(a1)

    def test_supersedes_different_node_false(self):
        assert not rec("a").supersedes(rec("b"))

    def test_with_service_string_spec(self):
        r = rec("a").with_service("index", "1-3")
        assert r.services["index"] == frozenset({1, 2, 3})

    def test_with_service_iterable(self):
        r = rec("a").with_service("doc", [4, 5])
        assert r.services["doc"] == frozenset({4, 5})

    def test_with_attr_and_without(self):
        r = rec("a").with_attr("Port", "8080")
        assert r.attrs["Port"] == "8080"
        assert "Port" not in r.without_attr("Port").attrs

    def test_functional_updates_do_not_mutate(self):
        r = rec("a")
        r.with_service("x", "1")
        assert r.services == {}


class TestUpsert:
    def test_insert_reports_change(self):
        d = Directory("me")
        assert d.upsert(rec("a"), now=1.0)
        assert "a" in d and len(d) == 1

    def test_identical_upsert_reports_no_change_but_refreshes(self):
        d = Directory("me")
        d.upsert(rec("a"), now=1.0)
        assert not d.upsert(rec("a"), now=5.0)
        assert d.last_refresh("a") == 5.0

    def test_lower_incarnation_loses(self):
        d = Directory("me")
        d.upsert(rec("a", incarnation=2), now=1.0)
        assert not d.upsert(rec("a", incarnation=1), now=2.0)
        assert d.get("a").incarnation == 2
        assert d.last_refresh("a") == 1.0  # stale record must not refresh

    def test_higher_incarnation_wins(self):
        d = Directory("me")
        d.upsert(rec("a", 0, services={"x": {1}}), now=1.0)
        assert d.upsert(rec("a", 1), now=2.0)
        assert d.get("a").incarnation == 1
        assert d.get("a").services == {}

    def test_same_incarnation_payload_change_is_visible(self):
        d = Directory("me")
        d.upsert(rec("a", 0), now=1.0)
        assert d.upsert(rec("a", 0, attrs={"load": "5"}), now=2.0)

    def test_upsert_idempotent(self):
        d = Directory("me")
        r = rec("a", 1, services={"x": {1}})
        d.upsert(r, now=1.0)
        d.upsert(r, now=1.0)
        assert len(d) == 1


class TestRemoveAndPurge:
    def test_remove(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        assert d.remove("a")
        assert not d.remove("a")
        assert "a" not in d

    def test_purge_stale_direct_entries(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        d.upsert(rec("b"), now=4.0)
        assert d.purge_stale(now=5.0, timeout=3.0) == ["a"]
        assert "b" in d

    def test_purge_never_removes_owner(self):
        d = Directory("me")
        d.upsert(rec("me"), now=0.0)
        assert d.purge_stale(now=100.0, timeout=1.0) == []

    def test_purge_stale_skips_relayed(self):
        d = Directory("me")
        d.upsert(rec("far"), now=0.0, relayed_by="leader")
        assert d.purge_stale(now=100.0, timeout=1.0) == []
        assert d.purge_stale_relayed(now=100.0, timeout=1.0) == ["far"]

    def test_purge_relayed_by_leader(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0, relayed_by="L1")
        d.upsert(rec("y"), now=0.0, relayed_by="L1")
        d.upsert(rec("z"), now=0.0, relayed_by="L2")
        d.upsert(rec("w"), now=0.0)
        assert sorted(d.purge_relayed_by("L1")) == ["x", "y"]
        assert list(d.members()) == ["w", "z"]

    def test_refresh_missing_returns_false(self):
        d = Directory("me")
        assert not d.refresh("ghost", now=1.0)

    def test_refresh_updates_relay_provenance(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0, relayed_by="L1")
        d.refresh("a", now=1.0, relayed_by="L2")
        assert d.relayed_by("a") == "L2"


class TestLookup:
    def make_dir(self):
        d = Directory("me")
        d.upsert(rec("idx1", services={"index": {1, 2}}), now=0.0)
        d.upsert(rec("idx2", services={"index": {3}}), now=0.0)
        d.upsert(rec("doc1", services={"doc": {1}}), now=0.0)
        d.upsert(rec("both", services={"index": {4}, "doc": {2, 3}}), now=0.0)
        return d

    def test_exact_service(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index")]
        assert ids == ["both", "idx1", "idx2"]

    def test_partition_range(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index", "1-2")]
        assert ids == ["idx1"]

    def test_partition_any_overlap(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index", "2-3")]
        assert ids == ["idx1", "idx2"]

    def test_service_regex(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index|doc")]
        assert ids == ["both", "doc1", "idx1", "idx2"]

    def test_partition_regex(self):
        d = self.make_dir()
        # regex (not range syntax): partitions matching '[34]'
        ids = [r.node_id for r in d.lookup_service("index", "[34]")]
        assert ids == ["both", "idx2"]

    def test_no_match(self):
        d = self.make_dir()
        assert d.lookup_service("cache") == []
        assert d.lookup_service("index", "99") == []

    def test_fullmatch_semantics(self):
        d = Directory("me")
        d.upsert(rec("n", services={"indexer": {1}}), now=0.0)
        assert d.lookup_service("index") == []  # 'index' must not match 'indexer'
        assert len(d.lookup_service("index.*")) == 1


class TestSnapshots:
    def test_snapshot_is_copy(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        snap = d.snapshot()
        d.remove("a")
        assert "a" in snap

    def test_members_sorted(self):
        d = Directory("me")
        for nid in ["c", "a", "b"]:
            d.upsert(rec(nid), now=0.0)
        assert list(d.members()) == ["a", "b", "c"]

    def test_clear(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        d.clear()
        assert len(d) == 0


class TestDeadlineHeapEngine:
    """The heap-driven purges must mirror the legacy scans exactly."""

    @staticmethod
    def _pair():
        fast, slow = Directory("me"), Directory("me")
        slow.use_fast_path = False
        return fast, slow

    def test_fast_and_legacy_purges_agree_under_churn(self):
        fast, slow = self._pair()
        # Scripted churn: inserts, refreshes, vouches, reclassification,
        # removals — the same sequence on both paths.
        for d in (fast, slow):
            for i in range(10):
                d.upsert(rec(f"n{i}"), now=0.0, relayed_by="L" if i % 2 else None)
            d.refresh("n2", 4.0)
            d.refresh("n3", 4.0, relayed_by="L")  # reclass direct -> relayed
            d.refresh("n5", 4.0, relayed_by=None)  # reclass relayed -> direct
            d.vouch("L", 3.0)
            d.remove("n9")
        for now in (6.0, 9.0, 12.0):
            assert fast.purge_stale(now, 5.0) == slow.purge_stale(now, 5.0)
            assert fast.purge_stale_relayed(now, 5.0) == slow.purge_stale_relayed(
                now, 5.0
            )
            assert list(fast.members()) == list(slow.members())

    def test_purge_order_matches_insertion_order(self):
        d = Directory("me")
        # Freshness deliberately scrambled vs insertion order.
        d.upsert(rec("c"), now=3.0)
        d.upsert(rec("a"), now=1.0)
        d.upsert(rec("b"), now=2.0)
        assert d.purge_stale(20.0, 5.0) == ["c", "a", "b"]

    def test_refresh_keeps_entry_alive_without_heap_churn(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0)
        for t in range(1, 30):
            d.refresh("x", float(t))
            assert d.purge_stale(float(t), 5.0) == []
        # One live heap record per entry: refreshes must not accumulate.
        assert len(d._direct_heap) <= 2

    def test_vouch_keeps_relayed_entry_alive_then_expires(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0, relayed_by="L")
        d.vouch("L", 8.0)
        assert d.purge_stale_relayed(10.0, 5.0) == []  # vouch covers it
        assert d.purge_stale_relayed(14.0, 5.0) == ["x"]  # vouch went stale

    def test_enable_fast_path_after_inserts_rebuilds_heaps(self):
        d = Directory("me")
        d.use_fast_path = False
        d.upsert(rec("x"), now=0.0)
        d.upsert(rec("y"), now=0.0, relayed_by="L")
        d.use_fast_path = True
        assert d.purge_stale(10.0, 5.0) == ["x"]
        assert d.purge_stale_relayed(10.0, 5.0) == ["y"]


class TestVersionedViews:
    def test_version_moves_on_structural_changes_only(self):
        d = Directory("me")
        v0 = d.version
        d.upsert(rec("x"), now=0.0)
        v1 = d.version
        assert v1 > v0
        d.refresh("x", 1.0)
        d.vouch("L", 1.0)
        assert d.version == v1  # freshness-only: no bump
        d.remove("x")
        assert d.version > v1

    def test_members_cached_until_version_moves(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0)
        first = d.members()
        d.refresh("x", 1.0)
        assert d.members() is first  # same tuple object: cache hit
        d.upsert(rec("y"), now=1.0)
        assert d.members() is not first
        assert list(d.members()) == ["x", "y"]

    def test_snapshot_returns_fresh_copy(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0)
        snap = d.snapshot()
        snap["poison"] = rec("poison")
        assert "poison" not in d.snapshot()

    def test_records_reflect_payload_updates(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0)
        before = d.records()
        d.upsert(rec("x", attrs={"k": "v"}), now=1.0)
        after = d.records()
        assert before is not after
        assert [r.attrs for r in after] == [{"k": "v"}]

    def test_purge_invalidates_view_caches(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0)
        d.upsert(rec("y"), now=10.0)
        assert list(d.members()) == ["x", "y"]
        assert d.purge_stale(14.0, 5.0) == ["x"]  # y refreshed at 10.0
        assert list(d.members()) == ["y"]
