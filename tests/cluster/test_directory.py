"""Unit tests for the yellow-page directory."""

import pytest

from repro.cluster import Directory, NodeRecord, parse_partitions


def rec(node_id, incarnation=0, services=None, attrs=None):
    return NodeRecord(
        node_id=node_id,
        incarnation=incarnation,
        services={k: frozenset(v) for k, v in (services or {}).items()},
        attrs=attrs or {},
    )


class TestParsePartitions:
    def test_single(self):
        assert parse_partitions("3") == frozenset({3})

    def test_range(self):
        assert parse_partitions("1-3") == frozenset({1, 2, 3})

    def test_mixed(self):
        assert parse_partitions("1-3,5") == frozenset({1, 2, 3, 5})

    def test_whitespace(self):
        assert parse_partitions(" 1 , 2-3 ") == frozenset({1, 2, 3})

    def test_empty(self):
        assert parse_partitions("") == frozenset()

    def test_descending_range_rejected(self):
        with pytest.raises(ValueError):
            parse_partitions("3-1")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_partitions("1,,2")


class TestNodeRecord:
    def test_supersedes_same_or_higher_incarnation(self):
        a0, a1 = rec("a", 0), rec("a", 1)
        assert a1.supersedes(a0)
        assert a0.supersedes(a0)
        assert not a0.supersedes(a1)

    def test_supersedes_different_node_false(self):
        assert not rec("a").supersedes(rec("b"))

    def test_with_service_string_spec(self):
        r = rec("a").with_service("index", "1-3")
        assert r.services["index"] == frozenset({1, 2, 3})

    def test_with_service_iterable(self):
        r = rec("a").with_service("doc", [4, 5])
        assert r.services["doc"] == frozenset({4, 5})

    def test_with_attr_and_without(self):
        r = rec("a").with_attr("Port", "8080")
        assert r.attrs["Port"] == "8080"
        assert "Port" not in r.without_attr("Port").attrs

    def test_functional_updates_do_not_mutate(self):
        r = rec("a")
        r.with_service("x", "1")
        assert r.services == {}


class TestUpsert:
    def test_insert_reports_change(self):
        d = Directory("me")
        assert d.upsert(rec("a"), now=1.0)
        assert "a" in d and len(d) == 1

    def test_identical_upsert_reports_no_change_but_refreshes(self):
        d = Directory("me")
        d.upsert(rec("a"), now=1.0)
        assert not d.upsert(rec("a"), now=5.0)
        assert d.last_refresh("a") == 5.0

    def test_lower_incarnation_loses(self):
        d = Directory("me")
        d.upsert(rec("a", incarnation=2), now=1.0)
        assert not d.upsert(rec("a", incarnation=1), now=2.0)
        assert d.get("a").incarnation == 2
        assert d.last_refresh("a") == 1.0  # stale record must not refresh

    def test_higher_incarnation_wins(self):
        d = Directory("me")
        d.upsert(rec("a", 0, services={"x": {1}}), now=1.0)
        assert d.upsert(rec("a", 1), now=2.0)
        assert d.get("a").incarnation == 1
        assert d.get("a").services == {}

    def test_same_incarnation_payload_change_is_visible(self):
        d = Directory("me")
        d.upsert(rec("a", 0), now=1.0)
        assert d.upsert(rec("a", 0, attrs={"load": "5"}), now=2.0)

    def test_upsert_idempotent(self):
        d = Directory("me")
        r = rec("a", 1, services={"x": {1}})
        d.upsert(r, now=1.0)
        d.upsert(r, now=1.0)
        assert len(d) == 1


class TestRemoveAndPurge:
    def test_remove(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        assert d.remove("a")
        assert not d.remove("a")
        assert "a" not in d

    def test_purge_stale_direct_entries(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        d.upsert(rec("b"), now=4.0)
        assert d.purge_stale(now=5.0, timeout=3.0) == ["a"]
        assert "b" in d

    def test_purge_never_removes_owner(self):
        d = Directory("me")
        d.upsert(rec("me"), now=0.0)
        assert d.purge_stale(now=100.0, timeout=1.0) == []

    def test_purge_stale_skips_relayed(self):
        d = Directory("me")
        d.upsert(rec("far"), now=0.0, relayed_by="leader")
        assert d.purge_stale(now=100.0, timeout=1.0) == []
        assert d.purge_stale_relayed(now=100.0, timeout=1.0) == ["far"]

    def test_purge_relayed_by_leader(self):
        d = Directory("me")
        d.upsert(rec("x"), now=0.0, relayed_by="L1")
        d.upsert(rec("y"), now=0.0, relayed_by="L1")
        d.upsert(rec("z"), now=0.0, relayed_by="L2")
        d.upsert(rec("w"), now=0.0)
        assert sorted(d.purge_relayed_by("L1")) == ["x", "y"]
        assert d.members() == ["w", "z"]

    def test_refresh_missing_returns_false(self):
        d = Directory("me")
        assert not d.refresh("ghost", now=1.0)

    def test_refresh_updates_relay_provenance(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0, relayed_by="L1")
        d.refresh("a", now=1.0, relayed_by="L2")
        assert d.relayed_by("a") == "L2"


class TestLookup:
    def make_dir(self):
        d = Directory("me")
        d.upsert(rec("idx1", services={"index": {1, 2}}), now=0.0)
        d.upsert(rec("idx2", services={"index": {3}}), now=0.0)
        d.upsert(rec("doc1", services={"doc": {1}}), now=0.0)
        d.upsert(rec("both", services={"index": {4}, "doc": {2, 3}}), now=0.0)
        return d

    def test_exact_service(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index")]
        assert ids == ["both", "idx1", "idx2"]

    def test_partition_range(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index", "1-2")]
        assert ids == ["idx1"]

    def test_partition_any_overlap(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index", "2-3")]
        assert ids == ["idx1", "idx2"]

    def test_service_regex(self):
        d = self.make_dir()
        ids = [r.node_id for r in d.lookup_service("index|doc")]
        assert ids == ["both", "doc1", "idx1", "idx2"]

    def test_partition_regex(self):
        d = self.make_dir()
        # regex (not range syntax): partitions matching '[34]'
        ids = [r.node_id for r in d.lookup_service("index", "[34]")]
        assert ids == ["both", "idx2"]

    def test_no_match(self):
        d = self.make_dir()
        assert d.lookup_service("cache") == []
        assert d.lookup_service("index", "99") == []

    def test_fullmatch_semantics(self):
        d = Directory("me")
        d.upsert(rec("n", services={"indexer": {1}}), now=0.0)
        assert d.lookup_service("index") == []  # 'index' must not match 'indexer'
        assert len(d.lookup_service("index.*")) == 1


class TestSnapshots:
    def test_snapshot_is_copy(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        snap = d.snapshot()
        d.remove("a")
        assert "a" in snap

    def test_members_sorted(self):
        d = Directory("me")
        for nid in ["c", "a", "b"]:
            d.upsert(rec(nid), now=0.0)
        assert d.members() == ["a", "b", "c"]

    def test_clear(self):
        d = Directory("me")
        d.upsert(rec("a"), now=0.0)
        d.clear()
        assert len(d) == 0
