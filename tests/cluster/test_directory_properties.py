"""Property-based tests for the yellow-page directory (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Directory, NodeRecord, parse_partitions

node_ids = st.sampled_from([f"n{i}" for i in range(6)])
incarnations = st.integers(min_value=0, max_value=5)


@st.composite
def records(draw):
    nid = draw(node_ids)
    inc = draw(incarnations)
    nparts = draw(st.integers(min_value=0, max_value=4))
    services = {"svc": frozenset(range(nparts))} if nparts else {}
    attrs = {"k": draw(st.sampled_from(["a", "b", "c"]))}
    return NodeRecord(nid, incarnation=inc, services=services, attrs=attrs)


@st.composite
def operations(draw):
    """A random op: (kind, record-or-id, time)."""
    kind = draw(st.sampled_from(["upsert", "remove", "refresh"]))
    rec = draw(records())
    t = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    relayer = draw(st.one_of(st.none(), st.sampled_from(["L1", "L2"])))
    return (kind, rec, t, relayer)


class TestDirectoryProperties:
    @given(st.lists(operations(), max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_incarnation_never_regresses(self, ops):
        """After any op sequence, each entry holds the max incarnation ever
        successfully upserted since its last removal."""
        d = Directory("owner")
        best = {}
        for kind, rec, t, relayer in ops:
            if kind == "upsert":
                d.upsert(rec, t, relayed_by=relayer)
                best[rec.node_id] = max(best.get(rec.node_id, -1), rec.incarnation)
            elif kind == "remove":
                d.remove(rec.node_id)
                best.pop(rec.node_id, None)
            else:
                d.refresh(rec.node_id, t, relayed_by=relayer)
        for nid, inc in best.items():
            assert d.get(nid) is not None
            assert d.get(nid).incarnation == inc

    @given(st.lists(records(), min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_upsert_idempotent(self, recs):
        """Replaying the same sequence twice gives the same directory."""
        d1, d2 = Directory("o"), Directory("o")
        for r in recs:
            d1.upsert(r, 1.0)
            d2.upsert(r, 1.0)
            d2.upsert(r, 1.0)  # duplicate delivery (overlapping groups)
        assert d1.snapshot() == d2.snapshot()

    @given(st.lists(records(), max_size=20), st.floats(min_value=0, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_members_sorted_and_consistent(self, recs, now):
        d = Directory("o")
        for r in recs:
            d.upsert(r, now)
        members = list(d.members())
        assert members == sorted(members)
        assert len(members) == len(d)
        for nid in members:
            assert nid in d

    @given(st.lists(records(), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_purge_relayed_by_removes_exactly_attribution(self, recs):
        d = Directory("o")
        for i, r in enumerate(recs):
            d.upsert(r, 0.0, relayed_by="L1" if i % 2 else "L2")
        attributed = set(d.relayed_entries("L1"))
        purged = set(d.purge_relayed_by("L1"))
        assert purged == attributed
        assert not d.relayed_entries("L1")

    @given(
        st.lists(records(), max_size=15),
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=11.0, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_purge_stale_only_removes_expired(self, recs, timeout, now):
        d = Directory("o")
        for i, r in enumerate(recs):
            d.upsert(r, float(i))  # staggered refresh times
        dead = d.purge_stale(now, timeout)
        for nid in dead:
            assert nid not in d
        for nid in d.members():
            assert nid == "o" or now - d.last_refresh(nid) <= timeout


class TestPartitionSpecProperties:
    @given(st.sets(st.integers(min_value=0, max_value=200), max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_through_spec_string(self, parts):
        spec = ",".join(str(p) for p in sorted(parts))
        assert parse_partitions(spec) == frozenset(parts)

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_range_expands(self, lo, width):
        assert parse_partitions(f"{lo}-{lo + width}") == frozenset(range(lo, lo + width + 1))
