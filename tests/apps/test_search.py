"""Tests for the prototype search service (paper Fig. 1 / Fig. 14)."""

import pytest

from repro.apps import SearchDeployment, SearchWorkload
from repro.apps.search import _doc_handler, _index_handler
from repro.cluster.gateway import Gateway


class TestWorkload:
    def test_index_partition_deterministic_and_in_range(self):
        w = SearchWorkload(index_partitions=2)
        for q in ("a", "b", "hello"):
            p = w.index_partition(q)
            assert 0 <= p < 2
            assert p == w.index_partition(q)

    def test_doc_partitions_distinct_and_in_range(self):
        w = SearchWorkload(doc_partitions=3, docs_per_query=2)
        parts = w.doc_partitions_for("query")
        assert len(parts) == 2
        assert len(set(parts)) == 2
        assert all(0 <= p < 3 for p in parts)

    def test_docs_per_query_capped_by_partitions(self):
        w = SearchWorkload(doc_partitions=2, docs_per_query=5)
        assert len(w.doc_partitions_for("q")) == 2

    def test_handlers_deterministic(self):
        r1 = _index_handler(0, {"query": "x"})
        r2 = _index_handler(0, {"query": "x"})
        assert r1 == r2 and len(r1["doc_ids"]) == 3
        d = _doc_handler(1, {"doc_ids": r1["doc_ids"]})
        assert set(d["descriptions"]) == set(r1["doc_ids"])


@pytest.fixture(scope="module")
def deployment():
    dep = SearchDeployment(networks=3, hosts_per_network=6, seed=1)
    dep.warm_up(15.0)
    return dep


class TestQueries:
    def test_successful_query(self, deployment):
        net = deployment.network
        results = []
        ev = deployment.engines["dcA"].query("hello world")
        ev._add_waiter(results.append)
        net.run(until=net.now + 2.0)
        res = results[0]
        assert res.ok
        assert res.value["query"] == "hello world"
        assert len(res.value["descriptions"]) == 3
        assert res.latency < 0.1  # all-local path

    def test_both_dcs_serve_locally(self, deployment):
        net = deployment.network
        for dc in ("dcA", "dcB"):
            results = []
            deployment.engines[dc].query(f"q-{dc}")._add_waiter(results.append)
            net.run(until=net.now + 2.0)
            assert results[0].ok and results[0].latency < 0.1


class TestFailover:
    def test_fig14_failover_shape(self):
        dep = SearchDeployment(networks=3, hosts_per_network=6, seed=2)
        net = dep.network
        dep.warm_up(15.0)
        engine = dep.engines["dcA"]
        gw = Gateway(
            net.sim,
            executor=lambda query: engine.query(query),
            workload=lambda seq: {"query": f"q{seq}"},
            rate=10.0,
        )
        gw.start()
        net.sim.call_at(35.0, dep.fail_doc_service, "dcA")
        net.sim.call_at(55.0, dep.recover_doc_service, "dcA")
        net.run(until=80.0)
        gw.stop()

        rt = dict(gw.stats.response_time_series())
        thr = dict(gw.stats.throughput_series())
        baseline = [rt[s] for s in range(20, 34) if s in rt]
        failover = [rt[s] for s in range(44, 54) if s in rt]
        recovered = [rt[s] for s in range(60, 78) if s in rt]
        assert baseline and failover and recovered
        # Normal latency well under 100 ms.
        assert max(baseline) < 0.1
        # During the failure the service survives via the remote DC at a
        # latency dominated by the 90 ms WAN RTT (paper: above 200 ms).
        assert min(failover) > 0.2
        # Throughput matches the arrival rate once detection completes.
        assert all(thr.get(s, 0) == 10 for s in range(46, 54))
        # Recovery brings latency straight back down.
        assert max(recovered) < 0.1
        # The dip happens only around the detection window.
        assert all(thr.get(s, 0) == 10 for s in range(20, 34))

    def test_queries_fail_without_proxies(self):
        # Same scenario but with the doc tier dead and no recovery: if the
        # remote path were broken the gateway would see errors; with
        # proxies it must keep succeeding indefinitely.
        dep = SearchDeployment(networks=3, hosts_per_network=6, seed=3)
        net = dep.network
        dep.warm_up(15.0)
        dep.fail_doc_service("dcA")
        net.run(until=30.0)  # past detection
        results = []
        dep.engines["dcA"].query("after-failure")._add_waiter(results.append)
        net.run(until=net.now + 3.0)
        assert results[0].ok
        assert results[0].latency > 0.15  # via dcB


class TestDeploymentValidation:
    def test_too_few_hosts_rejected(self):
        with pytest.raises(ValueError):
            SearchDeployment(networks=1, hosts_per_network=3)


class TestQueryFailurePaths:
    def test_index_tier_failure_without_remote_fails_query(self):
        """With no proxies configured (single DC), losing the whole index
        tier makes queries fail with an index error."""
        from repro.apps.search import QueryEngine, SearchCluster
        from repro.core import HierarchicalNode
        from repro.net import Network
        from repro.net.builders import build_switched_cluster
        from repro.protocols import deploy

        w = SearchWorkload(index_partitions=1, doc_partitions=1, docs_per_query=1)
        topo, hosts = build_switched_cluster(1, 6)
        net = Network(topo, seed=31)
        nodes = deploy(HierarchicalNode, net, hosts)
        cluster = SearchCluster(net, nodes, index_hosts=hosts[1:2], doc_hosts=hosts[2:3], workload=w)
        cluster.deploy()
        engine = QueryEngine(net, hosts[5], nodes[hosts[5]], w, request_timeout=0.5)
        net.run(until=12.0)
        cluster.fail_service_hosts(hosts[1:2])  # index gone
        net.run(until=25.0)  # membership purges it
        results = []
        engine.query("q")._add_waiter(results.append)
        net.run(until=net.now + 5.0)
        assert not results[0].ok
        assert results[0].error.startswith("index:")

    def test_doc_tier_failure_without_remote_fails_query(self):
        from repro.apps.search import QueryEngine, SearchCluster
        from repro.core import HierarchicalNode
        from repro.net import Network
        from repro.net.builders import build_switched_cluster
        from repro.protocols import deploy

        w = SearchWorkload(index_partitions=1, doc_partitions=1, docs_per_query=1)
        topo, hosts = build_switched_cluster(1, 6)
        net = Network(topo, seed=32)
        nodes = deploy(HierarchicalNode, net, hosts)
        cluster = SearchCluster(net, nodes, index_hosts=hosts[1:2], doc_hosts=hosts[2:3], workload=w)
        cluster.deploy()
        engine = QueryEngine(net, hosts[5], nodes[hosts[5]], w, request_timeout=0.5)
        net.run(until=12.0)
        cluster.fail_service_hosts(hosts[2:3])  # doc tier gone
        net.run(until=25.0)
        results = []
        engine.query("q")._add_waiter(results.append)
        net.run(until=net.now + 5.0)
        assert not results[0].ok
        assert results[0].error.startswith("doc:")

    def test_recovered_tier_serves_again(self):
        from repro.apps.search import QueryEngine, SearchCluster
        from repro.core import HierarchicalNode
        from repro.net import Network
        from repro.net.builders import build_switched_cluster
        from repro.protocols import deploy

        w = SearchWorkload(index_partitions=1, doc_partitions=1, docs_per_query=1)
        topo, hosts = build_switched_cluster(1, 6)
        net = Network(topo, seed=33)
        nodes = deploy(HierarchicalNode, net, hosts)
        cluster = SearchCluster(net, nodes, index_hosts=hosts[1:2], doc_hosts=hosts[2:3], workload=w)
        cluster.deploy()
        engine = QueryEngine(net, hosts[5], nodes[hosts[5]], w)
        net.run(until=12.0)
        cluster.fail_service_hosts(hosts[2:3])
        net.run(until=25.0)
        cluster.recover_service_hosts(hosts[2:3])
        net.run(until=40.0)
        results = []
        engine.query("after recovery")._add_waiter(results.append)
        net.run(until=net.now + 3.0)
        assert results[0].ok
