"""Detector selection through every configuration surface.

The strategy is a deployment knob, so it must be reachable the same
three ways every other knob is: the ``*SYSTEM`` config file, the
``REPRO_*`` environment overrides the daemon command honours, and the
live ``control()`` call of the service API — and a non-default choice
must survive a render/parse round trip.
"""

from __future__ import annotations

import pytest

from repro.analysis.models import MODELS, AnalysisParams
from repro.core import HierarchicalConfig, parse_config_text, render_config_text
from repro.core.config import detector_overrides_from_env
from repro.detect.bounds import LN10


DETECTOR_BLOCK = """
*SYSTEM
DETECTOR = swim
PROBE_PERIOD = 0.5
PROBE_TIMEOUT = 0.25
INDIRECT_PROBES = 2
SUSPICION_TIMEOUT = 1.5
PHI_THRESHOLD = 6.0
PHI_WINDOW = 16
"""


class TestConfigFile:
    def test_detector_keys_parse(self):
        cfg, _ = parse_config_text(DETECTOR_BLOCK)
        assert cfg.detector == "swim"
        assert cfg.probe_period == 0.5
        assert cfg.probe_timeout == 0.25
        assert cfg.indirect_probes == 2
        assert cfg.suspicion_timeout == 1.5
        assert cfg.phi_threshold == 6.0
        assert cfg.phi_window == 16

    def test_detector_name_is_normalised(self):
        cfg, _ = parse_config_text("*SYSTEM\nDETECTOR = Phi-Accrual\n")
        assert cfg.detector == "phi-accrual"

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError, match="DETECTOR"):
            parse_config_text("*SYSTEM\nDETECTOR = psychic\n")

    def test_non_default_detector_round_trips(self):
        cfg, services = parse_config_text(DETECTOR_BLOCK)
        cfg2, _ = parse_config_text(render_config_text(cfg, services))
        assert cfg2 == cfg

    def test_default_render_emits_no_detector_lines(self):
        text = render_config_text(HierarchicalConfig(), [])
        assert "DETECTOR" not in text
        assert "PHI_" not in text


class TestEnvOverrides:
    def test_env_overrides_parse_and_convert(self):
        overrides = detector_overrides_from_env(
            {
                "REPRO_DETECTOR": " SWIM ",
                "REPRO_PROBE_PERIOD": "0.5",
                "REPRO_INDIRECT_PROBES": "2",
                "REPRO_PHI_THRESHOLD": "6.5",
                "REPRO_PHI_WINDOW": "16",
                "UNRELATED": "ignored",
            }
        )
        assert overrides == {
            "detector": "swim",
            "probe_period": 0.5,
            "indirect_probes": 2,
            "phi_threshold": 6.5,
            "phi_window": 16,
        }

    def test_empty_values_are_skipped(self):
        assert detector_overrides_from_env({"REPRO_DETECTOR": ""}) == {}

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError):
            detector_overrides_from_env({"REPRO_DETECTOR": "psychic"})


class TestDaemonFlags:
    def test_daemon_parser_accepts_detector_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "daemon",
                "--spec",
                "cluster.json",
                "--node",
                "n0",
                "--detector",
                "phi-accrual",
                "--phi-threshold",
                "6",
                "--probe-period",
                "0.5",
            ]
        )
        assert args.detector == "phi-accrual"
        assert args.phi_threshold == 6.0
        assert args.probe_period == 0.5

    def test_daemon_parser_rejects_unknown_detector(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["daemon", "--detector", "psychic"])


class TestServiceControl:
    def make_service(self):
        from repro.core import MService
        from repro.net import Network
        from repro.net.builders import build_switched_cluster

        topo, hosts = build_switched_cluster(1, 2)
        net = Network(topo, seed=1)
        ms = MService(net, hosts[0])
        ms.run()
        return net, ms

    def test_control_swaps_detector_live(self):
        net, ms = self.make_service()
        net.run(until=3.0)
        assert ms.node.detector.name == "counter"
        ms.control("detector", "swim")
        assert ms.node.config.detector == "swim"
        assert ms.node.detector.name == "swim"
        assert ms.node.running
        net.run(until=6.0)
        ms.stop()
        assert ms.node.runtime.live_timers == 0

    def test_control_adjusts_detector_knobs(self):
        net, ms = self.make_service()
        ms.control("phi_threshold", 6.0)
        ms.control("suspicion_timeout", 1.0)
        assert ms.node.config.phi_threshold == 6.0
        assert ms.node.config.suspicion_timeout == 1.0

    def test_control_rejects_unknown_detector(self):
        net, ms = self.make_service()
        with pytest.raises(ValueError, match="psychic"):
            ms.control("detector", "psychic")


class TestAnalysisModels:
    def test_detection_time_follows_the_detector(self):
        counter = MODELS["hierarchical"](AnalysisParams())
        phi = MODELS["hierarchical"](AnalysisParams(detector="phi-accrual"))
        assert counter.detection_time(100) == 5.0  # k / f, the paper's bound
        assert phi.detection_time(100) == pytest.approx(8.0 * LN10)

    def test_default_params_reproduce_the_paper(self):
        # The satellite bugfix: detection time routes through the bound,
        # and the counter default still gives max_loss * period everywhere.
        for name, model_cls in MODELS.items():
            model = model_cls(AnalysisParams())
            if name == "gossip":
                assert model.detection_time(64) > 5.0  # O(log n) growth
            else:
                assert model.detection_time(64) == 5.0

    def test_bdt_scales_with_detector_bound(self):
        slow = MODELS["all-to-all"](AnalysisParams(detector="phi-accrual"))
        fast = MODELS["all-to-all"](AnalysisParams(detector="swim"))
        n = 50
        assert slow.bdt(n) > fast.bdt(n)
        assert slow.aggregate_bandwidth(n) == fast.aggregate_bandwidth(n)
