"""Chaos-loss regressions for the detector strategies.

Small instances of the :class:`~repro.chaos.lab.DetectorMatrixLab`
fabric — base packet loss everywhere plus a directionally degraded
inter-network link — pin the two promises a strategy makes: false
positives stay inside the per-detector budget, and a real crash is
detected within twice the advertised bound.  A second pass pins seeded
determinism: the active detectors draw only from their dedicated RNG
streams, so re-running a pair must reproduce it measurement-for-
measurement.
"""

from __future__ import annotations

import pytest

from repro.chaos.lab import DetectorMatrixLab

pytestmark = pytest.mark.slow


def small_lab(**overrides) -> DetectorMatrixLab:
    defaults = dict(
        networks=3,
        hosts_per_network=4,
        seed=7,
        warmup=12.0,
        bandwidth_window=6.0,
        observe=25.0,
        chaos_len=10.0,
    )
    defaults.update(overrides)
    return DetectorMatrixLab(**defaults)


@pytest.mark.parametrize("detector", ["counter", "swim", "phi-accrual"])
def test_false_positives_stay_inside_the_budget(detector):
    result = small_lab().run_pair(detector, "hierarchical")
    assert result.false_failures <= result.false_failure_bound
    assert result.ok, result.violations


@pytest.mark.parametrize("detector", ["counter", "swim", "phi-accrual"])
def test_detection_lands_inside_the_advertised_gate(detector):
    result = small_lab().run_pair(detector, "all-to-all")
    assert result.detection is not None
    assert result.detection <= result.detection_gate_s
    assert result.convergence is not None
    assert result.ok, result.violations


@pytest.mark.parametrize(
    "detector,scheme",
    [("swim", "hierarchical"), ("swim", "gossip"), ("phi-accrual", "all-to-all")],
)
def test_seeded_runs_are_deterministic(detector, scheme):
    first = small_lab().run_pair(detector, scheme)
    second = small_lab().run_pair(detector, scheme)
    assert first == second  # frozen dataclass: every measurement equal
