"""Strategy-conformance suite: every detector against a fake runtime.

The detectors speak only :class:`~repro.runtime.ports.NodeRuntime` ports,
so the role-test :class:`FakeRuntime` drives them without a simulator:
manual clock, recorded sends/emits, firable timers.  The parametrized
tests pin the contract every strategy must honour — fresh peers are never
silent, observations reset silence, ``forget`` drops all soft state, and
``stop`` cancels every timer the detector created.
"""

from __future__ import annotations

import math
from typing import Dict, List

import pytest

from repro.core.groups import PeerState
from repro.detect import (
    DETECTORS,
    CounterDetector,
    FailureDetector,
    PhiAccrualDetector,
    SwimDetector,
    UnicastProber,
    handle_probe_packet,
    make_detector,
)
from repro.detect.bounds import LN10, detection_bound
from repro.net.packet import Packet
from repro.protocols.base import ProtocolConfig
from tests.core.roles.conftest import FakeRuntime

ALL = sorted(DETECTORS)
SCOPE = "test"


class FakeGroup:
    """Just the ``peers`` mapping :meth:`silent_peers` reads."""

    def __init__(self, peers: Dict[str, PeerState]) -> None:
        self.peers = peers


def peer(node_id: str, last_heard: float) -> PeerState:
    return PeerState(node_id=node_id, last_heard=last_heard)


def build(name: str, members: List[str] = (), **overrides) -> tuple:
    config = ProtocolConfig(detector=name, **overrides)
    runtime = FakeRuntime("n0")
    det = make_detector(config, runtime)
    det.attach(
        prober=UnicastProber(runtime, "detect", config.header_size),
        members=lambda: list(members),
    )
    return det, runtime, config


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(DETECTORS) == {"counter", "swim", "phi-accrual"}
        assert DETECTORS["counter"] is CounterDetector
        assert DETECTORS["swim"] is SwimDetector
        assert DETECTORS["phi-accrual"] is PhiAccrualDetector

    def test_registry_names_match_class_names(self):
        for name, cls in DETECTORS.items():
            assert cls.name == name

    def test_make_detector_unknown_raises(self):
        config = ProtocolConfig()
        object.__setattr__(config, "detector", "psychic")
        with pytest.raises(ValueError, match="psychic"):
            make_detector(config, FakeRuntime("n0"))

    @pytest.mark.parametrize("name", ALL)
    def test_make_detector_builds_the_right_class(self, name):
        det, _, _ = build(name)
        assert type(det) is DETECTORS[name]


# ----------------------------------------------------------------------
# Shared contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL)
class TestConformance:
    def test_fresh_peer_is_not_silent(self, name):
        det, runtime, _ = build(name)
        det.start()
        assert det.silent_ids(SCOPE, ["ghost"], runtime.now, 5.0) == []
        det.stop()

    def test_group_silence_declares_after_timeout(self, name):
        det, runtime, _ = build(name)
        det.start()
        runtime.advance(20.0)
        group = FakeGroup(
            {"old": peer("old", 0.0), "new": peer("new", runtime.now)}
        )
        dead = det.silent_peers(SCOPE, group, runtime.now, 5.0)
        assert [p.node_id for p in dead] == ["old"]
        det.stop()

    def test_observation_resets_silence(self, name):
        det, runtime, _ = build(name)
        det.start()
        det.observe_heartbeat(SCOPE, "p1", runtime.now)
        runtime.advance(4.9)
        assert det.silent_ids(SCOPE, ["p1"], runtime.now, 5.0) == []
        runtime.advance(0.2)
        assert det.silent_ids(SCOPE, ["p1"], runtime.now, 5.0) == ["p1"]
        det.stop()

    def test_later_observation_wins(self, name):
        # Observation ordering: the freshest heartbeat sets the deadline.
        det, runtime, _ = build(name)
        det.start()
        det.observe_heartbeat(SCOPE, "p1", runtime.now)
        runtime.advance(4.0)
        det.observe_heartbeat(SCOPE, "p1", runtime.now)
        runtime.advance(4.0)
        assert det.silent_ids(SCOPE, ["p1"], runtime.now, 5.0) == []
        det.stop()

    def test_forget_drops_all_soft_state(self, name):
        det, runtime, _ = build(name)
        det.start()
        det.observe_heartbeat(SCOPE, "p1", runtime.now)
        runtime.advance(30.0)
        det.forget("p1", SCOPE)
        # A forgotten peer is a stranger again — never silent on sight.
        assert det.silent_ids(SCOPE, ["p1"], runtime.now, 5.0) == []
        det.stop()

    def test_stop_cancels_every_timer(self, name):
        det, runtime, _ = build(name, members=["p1", "p2", "p3"])
        det.start()
        if det.uses_probes:
            assert runtime.live_timers > 0
            for timer in list(runtime.recurring):
                timer.fn(*timer.args)  # fire a probe round: arms one-shots
            assert any(not t.cancelled for t in runtime.oneshots)
        det.stop()
        assert runtime.live_timers == 0

    def test_detection_bound_routes_through_bounds(self, name):
        det, _, config = build(name)
        for scheme in ("hierarchical", "all-to-all", "gossip"):
            expected = detection_bound(
                name,
                period=config.heartbeat_period,
                max_loss=config.max_loss,
                n=12,
                scheme=scheme,
                phi_threshold=config.phi_threshold,
                suspicion_timeout=config.suspicion_timeout,
                probe_timeout=config.probe_timeout,
                probe_period=config.probe_period,
                gossip_mistake_prob=config.gossip_mistake_prob,
            )
            got = det.detection_bound(n=12, scheme=scheme)
            assert got == expected > 0.0

    def test_passive_flag_matches_strategy(self, name):
        det, _, _ = build(name)
        assert det.passive is (name == "counter")


# ----------------------------------------------------------------------
# SWIM specifics
# ----------------------------------------------------------------------
class TestSwim:
    MEMBERS = ["p1", "p2", "p3", "p4"]

    def fire_round(self, det, runtime) -> str:
        for timer in list(runtime.recurring):
            timer.fn(*timer.args)
        probes = [s for s in runtime.sent if s[1] == "probe"]
        assert probes, "probe round sent nothing"
        return probes[-1][0]

    def drive_to_suspect(self, det, runtime, config) -> str:
        target = self.fire_round(det, runtime)
        runtime.advance(config.probe_timeout + 0.01)  # direct timeout
        runtime.advance(config.probe_timeout + 0.01)  # indirect timeout
        assert any(kind == "suspect" for _, kind, _ in runtime.emitted)
        return target

    def test_probe_round_pings_a_member(self, name="swim"):
        det, runtime, config = build("swim", members=self.MEMBERS)
        det.start()
        target = self.fire_round(det, runtime)
        assert target in self.MEMBERS
        dst, kind, payload, size, port = runtime.sent[-1]
        assert payload == {"origin": "n0"}
        assert port == "detect"
        assert size == config.header_size + 16

    def test_direct_timeout_fans_out_ping_reqs(self):
        det, runtime, config = build("swim", members=self.MEMBERS)
        det.start()
        target = self.fire_round(det, runtime)
        runtime.advance(config.probe_timeout + 0.01)
        reqs = [s for s in runtime.sent if s[1] == "probe-req"]
        assert len(reqs) == min(config.indirect_probes, len(self.MEMBERS) - 1)
        for dst, _, payload, _, _ in reqs:
            assert dst != target
            assert payload == {"target": target, "origin": "n0"}

    def test_unanswered_probe_suspects_then_declares(self):
        det, runtime, config = build("swim", members=self.MEMBERS)
        det.start()
        target = self.drive_to_suspect(det, runtime, config)
        # Not declared until the suspicion deadline passes.
        assert det.silent_ids(SCOPE, [target], runtime.now, 1e9) == []
        runtime.advance(config.suspicion_timeout + 0.01)
        assert det.silent_ids(SCOPE, [target], runtime.now, 1e9) == [target]
        assert any(kind == "suspect_expired" for _, kind, _ in runtime.emitted)

    def test_ack_refutes_in_flight_probe(self):
        det, runtime, config = build("swim", members=self.MEMBERS)
        det.start()
        target = self.fire_round(det, runtime)
        det.observe_ack(target, runtime.now)
        runtime.advance(config.probe_timeout + 0.01)
        runtime.advance(config.probe_timeout + config.suspicion_timeout + 1.0)
        assert not [s for s in runtime.sent if s[1] == "probe-req"]
        assert det.silent_ids(SCOPE, [target], runtime.now, 1e9) == []

    def test_heartbeat_refutes_suspicion(self):
        det, runtime, config = build("swim", members=self.MEMBERS)
        det.start()
        target = self.drive_to_suspect(det, runtime, config)
        det.observe_heartbeat(SCOPE, target, runtime.now, incarnation=1)
        assert any(kind == "suspect_refuted" for _, kind, _ in runtime.emitted)
        runtime.advance(config.suspicion_timeout + 1.0)
        assert det.silent_ids(SCOPE, [target], runtime.now, 1e9) == []

    def test_bumped_incarnation_clears_declaration(self):
        det, runtime, config = build("swim", members=self.MEMBERS)
        det.start()
        target = self.drive_to_suspect(det, runtime, config)
        runtime.advance(config.suspicion_timeout + 0.2)
        assert det.silent_ids(SCOPE, [target], runtime.now, 1e9) == [target]
        det.observe_heartbeat(SCOPE, target, runtime.now, incarnation=2)
        assert det.silent_ids(SCOPE, [target], runtime.now, 1e9) == []

    def test_stop_cancels_in_flight_probe_timers(self):
        det, runtime, _ = build("swim", members=self.MEMBERS)
        det.start()
        self.fire_round(det, runtime)
        assert any(not t.cancelled for t in runtime.oneshots)
        det.stop()
        assert runtime.live_timers == 0
        sent_before = len(runtime.sent)
        runtime.advance(100.0)
        assert len(runtime.sent) == sent_before  # nothing fires after stop

    def test_declared_peers_leave_the_probe_pool(self):
        det, runtime, config = build("swim", members=["p1"])
        det.start()
        self.drive_to_suspect(det, runtime, config)
        runtime.advance(config.suspicion_timeout + 0.2)
        assert det.silent_ids(SCOPE, ["p1"], runtime.now, 1e9) == ["p1"]
        sent_before = len(runtime.sent)
        for timer in list(runtime.recurring):
            timer.fn(*timer.args)
        assert len(runtime.sent) == sent_before  # no probes at the dead


# ----------------------------------------------------------------------
# φ-accrual specifics
# ----------------------------------------------------------------------
class TestPhiAccrual:
    def warm(self, det, runtime, peer_id="p1", beats=6, period=1.0):
        for _ in range(beats):
            det.observe_heartbeat(SCOPE, peer_id, runtime.now)
            runtime.advance(period)

    def test_phi_is_none_while_warming(self):
        det, runtime, _ = build("phi-accrual")
        det.start()
        det.observe_heartbeat(SCOPE, "p1", runtime.now)
        assert det.phi(SCOPE, "p1", runtime.now + 3.0) is None

    def test_learned_cadence_overrides_the_timeout(self):
        det, runtime, config = build("phi-accrual")
        det.start()
        self.warm(det, runtime)
        # 2s of silence on a 1s cadence: φ ≈ 2/ln10 « threshold, alive —
        # even against a counter deadline that would already have fired.
        runtime.advance(1.0)
        assert det.silent_ids(SCOPE, ["p1"], runtime.now, 0.5) == []
        # Silence beyond φ·ln10·mean: dead, even with an enormous timeout.
        runtime.advance(config.phi_threshold * LN10 * 1.0 + 1.0)
        assert det.silent_ids(SCOPE, ["p1"], runtime.now, 1e9) == ["p1"]

    def test_slower_cadence_earns_more_patience(self):
        det, runtime, _ = build("phi-accrual")
        det.start()
        self.warm(det, runtime, peer_id="fast", period=1.0)
        self.warm(det, runtime, peer_id="slow", period=3.0)
        gap = 8.0 * LN10 * 2.0  # kills a 1s cadence, not a 3s one
        runtime.advance(gap)
        dead = det.silent_ids(SCOPE, ["fast", "slow"], runtime.now, 1e9)
        assert dead == ["fast"]

    def test_scopes_are_isolated(self):
        det, runtime, _ = build("phi-accrual")
        det.start()
        self.warm(det, runtime)
        # No observations ever arrived on the other scope: stranger, alive.
        assert det.silent_ids("other", ["p1"], runtime.now, 5.0) == []

    def test_phi_value_matches_formula(self):
        det, runtime, _ = build("phi-accrual")
        det.start()
        self.warm(det, runtime, period=2.0)
        silence = 10.0
        score = det.phi(SCOPE, "p1", runtime.now - 2.0 + silence)
        assert score == pytest.approx(silence / (2.0 * LN10))


# ----------------------------------------------------------------------
# Probe wire protocol
# ----------------------------------------------------------------------
class RecordingDetector(FailureDetector):
    name = "recording"
    passive = False

    def __init__(self, config, runtime):
        super().__init__(config, runtime)
        self.acks: List[str] = []

    def observe_ack(self, peer_id, now):
        self.acks.append(peer_id)

    def silent_peers(self, scope, group, now, timeout):
        return []

    def silent_ids(self, scope, candidates, now, timeout):
        return []


class TestProbeWire:
    def setup_method(self):
        self.runtime = FakeRuntime("relay")
        self.config = ProtocolConfig()
        self.det = RecordingDetector(self.config, self.runtime)
        self.hdr = self.config.header_size

    def handle(self, packet) -> bool:
        return handle_probe_packet(self.runtime, self.det, packet, "detect", self.hdr)

    def test_probe_is_acked_to_the_origin(self):
        pkt = Packet(src="hop", dst="relay", kind="probe", payload={"origin": "n0"}, size=1)
        assert self.handle(pkt)
        dst, kind, payload, size, port = self.runtime.sent[-1]
        assert (dst, kind, payload) == ("n0", "probe-ack", {})
        assert (size, port) == (self.hdr + 8, "detect")

    def test_probe_req_is_relayed_as_a_probe(self):
        pkt = Packet(
            src="n0",
            dst="relay",
            kind="probe-req",
            payload={"target": "victim", "origin": "n0"},
            size=1,
        )
        assert self.handle(pkt)
        dst, kind, payload, _, _ = self.runtime.sent[-1]
        assert (dst, kind) == ("victim", "probe")
        assert payload == {"origin": "n0"}  # the ack skips the relay

    def test_probe_ack_feeds_the_detector(self):
        pkt = Packet(src="victim", dst="relay", kind="probe-ack", payload={}, size=1)
        assert self.handle(pkt)
        assert self.det.acks == ["victim"]
        assert not self.runtime.sent

    def test_other_kinds_are_not_consumed(self):
        pkt = Packet(src="n0", dst="relay", kind="heartbeat", payload={}, size=1)
        assert not self.handle(pkt)
        assert not self.runtime.sent


# ----------------------------------------------------------------------
# Advertised bounds
# ----------------------------------------------------------------------
class TestBounds:
    def test_counter_default_is_the_paper_formula(self):
        assert detection_bound("counter", period=1.0, max_loss=5) == 5.0
        assert detection_bound("counter", period=0.5, max_loss=4) == 2.0

    def test_counter_gossip_bound_grows_logarithmically(self):
        small = detection_bound("counter", period=1.0, max_loss=5, n=8, scheme="gossip")
        large = detection_bound("counter", period=1.0, max_loss=5, n=64, scheme="gossip")
        assert large > small
        assert large - small == pytest.approx(math.log2(64) - math.log2(8))

    def test_swim_bound_combines_the_three_phases(self):
        got = detection_bound(
            "swim",
            period=1.0,
            max_loss=5,
            probe_timeout=0.5,
            suspicion_timeout=2.0,
        )
        assert got == pytest.approx(1.0 / (1.0 - math.exp(-1.0)) + 1.0 + 2.0)

    def test_phi_bound_scales_with_threshold(self):
        lo = detection_bound("phi-accrual", period=1.0, max_loss=5, phi_threshold=4.0)
        hi = detection_bound("phi-accrual", period=1.0, max_loss=5, phi_threshold=8.0)
        assert hi == pytest.approx(2.0 * lo)
        assert hi == pytest.approx(8.0 * LN10)

    def test_unknown_detector_raises(self):
        with pytest.raises(ValueError):
            detection_bound("psychic", period=1.0, max_loss=5)
