"""Lifecycle regressions shared by all three protocol stacks.

The runtime layer owns every timer a protocol node creates, so
``stop()`` must leave no live timers behind — for the hierarchical node
(which had this guarantee since the stray-one-shot fix) *and* for the
baselines (which previously hand-rolled timer bookkeeping and leaked
their self-rescheduling one-shots).  A leaked timer fires into the
node's next life and acts on stale state, or keeps a dead node's
callbacks churning forever.
"""

import pytest

from repro.core.config import HierarchicalConfig
from repro.metrics.experiment import make_scheme_cluster
from repro.protocols.base import ProtocolConfig


def make_nodes(scheme, detector=None):
    config = None
    if detector is not None:
        cls = HierarchicalConfig if scheme == "hierarchical" else ProtocolConfig
        config = cls(detector=detector)
    net, hosts, nodes = make_scheme_cluster(scheme, 2, 3, seed=11, config=config)
    return net, hosts, nodes


@pytest.mark.parametrize("scheme", ["hierarchical", "all-to-all", "gossip"])
def test_stop_mid_run_leaves_no_live_timers(scheme):
    net, hosts, nodes = make_nodes(scheme)
    # Mid-run: timers re-armed, elections/syncs in flight for the
    # hierarchical scheme (its one-shots are the interesting part).
    net.run(until=7.3)
    for node in nodes.values():
        assert node.runtime.live_timers > 0  # the daemon is actually ticking
        node.stop()
        assert node.runtime.live_timers == 0
    # Nothing protocol-related fires after a full quiesce either.
    before = len(net.trace)
    net.run(until=60.0)
    assert len(net.trace) == before


@pytest.mark.parametrize("scheme", ["hierarchical", "all-to-all", "gossip"])
def test_restart_after_stop_rebuilds_timers(scheme):
    net, hosts, nodes = make_nodes(scheme)
    net.run(until=5.0)
    victim = hosts[0]
    nodes[victim].stop()
    assert nodes[victim].runtime.live_timers == 0
    nodes[victim].start()
    assert nodes[victim].runtime.live_timers > 0
    net.run(until=30.0)
    # The restarted node rejoins: everyone sees it again.
    for host, node in nodes.items():
        if host != victim:
            assert node.knows(victim)


@pytest.mark.parametrize("scheme", ["hierarchical", "all-to-all", "gossip"])
@pytest.mark.parametrize("detector", ["swim", "phi-accrual"])
def test_stop_with_active_detector_leaves_no_live_timers(scheme, detector):
    # Active detectors own timers of their own (SWIM's probe rounds and
    # per-probe timeouts); node.stop() must take those down too.
    net, hosts, nodes = make_nodes(scheme, detector=detector)
    net.run(until=7.3)
    for node in nodes.values():
        assert node.detector.name == detector
        node.stop()
        assert node.runtime.live_timers == 0
    before = len(net.trace)
    net.run(until=60.0)
    assert len(net.trace) == before


@pytest.mark.parametrize("scheme", ["hierarchical", "all-to-all", "gossip"])
@pytest.mark.parametrize("detector", ["swim", "phi-accrual"])
def test_restart_with_active_detector_rejoins(scheme, detector):
    net, hosts, nodes = make_nodes(scheme, detector=detector)
    net.run(until=5.0)
    victim = hosts[0]
    nodes[victim].stop()
    assert nodes[victim].runtime.live_timers == 0
    nodes[victim].start()
    net.run(until=40.0)
    for host, node in nodes.items():
        if host != victim:
            assert node.knows(victim)


@pytest.mark.parametrize("scheme", ["hierarchical", "all-to-all", "gossip"])
def test_rebuild_detector_swaps_strategy_mid_run(scheme):
    # The service API's detector control rides this path: a running node
    # swaps strategies without a restart and keeps ticking.
    from dataclasses import replace

    net, hosts, nodes = make_nodes(scheme)
    net.run(until=5.0)
    node = nodes[hosts[0]]
    assert node.detector.name == "counter"
    node.apply_config(replace(node.config, detector="swim"))
    assert node.detector.name == "swim"
    assert node.running
    net.run(until=25.0)
    for host, other in nodes.items():
        if host != hosts[0]:
            assert other.knows(hosts[0])
    node.stop()
    assert node.runtime.live_timers == 0


@pytest.mark.parametrize("scheme", ["hierarchical", "all-to-all", "gossip"])
def test_stop_is_idempotent_and_timers_stay_dead(scheme):
    net, hosts, nodes = make_nodes(scheme)
    net.run(until=4.1)
    node = nodes[hosts[2]]
    node.stop()
    node.stop()  # second stop is a no-op, not an error
    assert node.runtime.live_timers == 0
    net.run(until=20.0)
    assert node.runtime.live_timers == 0
