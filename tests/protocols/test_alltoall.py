"""Unit/integration tests for the all-to-all baseline."""

import pytest

from repro.cluster import ServiceSpec
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import AllToAllNode, ProtocolConfig, deploy


def make_cluster(networks=1, hosts=4, seed=1, loss=0.0):
    topo, hosts_list = build_switched_cluster(networks, hosts)
    net = Network(topo, seed=seed, loss_rate=loss)
    return net, hosts_list


class TestFormation:
    def test_full_view_after_warmup(self):
        net, hosts = make_cluster(1, 5)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)

    def test_cross_network_view(self):
        net, hosts = make_cluster(3, 4)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        assert all(len(n.view()) == 12 for n in nodes.values())

    def test_member_up_traced_for_every_discovery(self):
        net, hosts = make_cluster(1, 3)
        deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        ups = net.trace.records(kind="member_up")
        # each of 3 nodes discovers 2 peers
        assert len(ups) == 6

    def test_services_propagate(self):
        net, hosts = make_cluster(1, 3)
        specs = {hosts[0]: [ServiceSpec.make("index", "1-2")]}
        nodes = deploy(AllToAllNode, net, hosts, services=specs)
        net.run(until=3.0)
        found = nodes[hosts[2]].directory.lookup_service("index", "2")
        assert [r.node_id for r in found] == [hosts[0]]

    def test_late_joiner_discovered(self):
        net, hosts = make_cluster(1, 4)
        nodes = deploy(AllToAllNode, net, hosts[:3])
        late = AllToAllNode(net, hosts[3])
        net.run(until=2.0)
        late.start()
        net.run(until=5.0)
        assert all(hosts[3] in n.view() for n in nodes.values())
        assert late.view() == sorted(hosts)


class TestDetection:
    def test_failure_detected_in_about_max_loss_periods(self):
        net, hosts = make_cluster(1, 5)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        victim = hosts[2]
        nodes[victim].stop()
        net.crash_host(victim)
        kill_time = net.now
        net.run(until=20.0)
        downs = net.trace.records(kind="member_down")
        observers = {r.node for r in downs if r.data["target"] == victim}
        assert observers == set(hosts) - {victim}
        detect = min(r.time for r in downs if r.data["target"] == victim)
        config = ProtocolConfig()
        assert config.fail_timeout <= detect - kill_time <= config.fail_timeout + 2 * config.heartbeat_period

    def test_no_false_positives_without_failures(self):
        net, hosts = make_cluster(2, 5)
        deploy(AllToAllNode, net, hosts)
        net.run(until=30.0)
        assert net.trace.records(kind="member_down") == []

    def test_no_false_positives_with_light_loss(self):
        net, hosts = make_cluster(1, 5, loss=0.02)
        deploy(AllToAllNode, net, hosts)
        net.run(until=40.0)
        # P(5 consecutive losses) = 0.02^5: effectively impossible here.
        assert net.trace.records(kind="member_down") == []

    def test_restart_rejoins_with_higher_incarnation(self):
        net, hosts = make_cluster(1, 3)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        victim = hosts[0]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=12.0)
        net.recover_host(victim)
        nodes[victim].start()
        net.run(until=20.0)
        observer = nodes[hosts[1]]
        assert victim in observer.view()
        assert observer.directory.get(victim).incarnation == 2

    def test_stopped_node_clears_state(self):
        net, hosts = make_cluster(1, 3)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        nodes[hosts[0]].stop()
        assert nodes[hosts[0]].view() == []


class TestPartition:
    def test_partition_and_heal(self):
        net, hosts = make_cluster(3, 4)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=5.0)
        net.fail_device("dc0-sw2")
        net.run(until=25.0)
        outside = [h for h in hosts if "-n2-" not in h]
        inside = [h for h in hosts if "-n2-" in h]
        for h in outside:
            assert nodes[h].view() == sorted(outside)
        for h in inside:
            # Behind a dead L2 switch even group peers are unreachable.
            assert nodes[h].view() == [h]
        net.recover_device("dc0-sw2")
        net.run(until=45.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)

    def test_detection_during_partition_is_symmetric(self):
        net, hosts = make_cluster(2, 4)
        deploy(AllToAllNode, net, hosts)
        net.run(until=5.0)
        net.fail_device("dc0-sw1")
        net.run(until=20.0)
        downs = net.trace.records(kind="member_down")
        # Every pair across the cut detected the other side.
        cross = {(r.node, r.data["target"]) for r in downs}
        for a in hosts[:4]:
            for b in hosts[4:]:
                assert (a, b) in cross and (b, a) in cross


class TestTraffic:
    def test_packet_rate_scales_quadratically(self):
        def rx_packets(n):
            net, hosts = make_cluster(1, n)
            deploy(AllToAllNode, net, hosts)
            net.meter.reset()
            net.run(until=11.0)
            return net.meter.packets(direction="rx")

        small, large = rx_packets(4), rx_packets(8)
        # n(n-1) scaling: 8 nodes should see ~56/12 ≈ 4.7x the packets.
        assert 3.5 < large / small < 6.0

    def test_update_value_propagates_immediately(self):
        net, hosts = make_cluster(1, 3)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        nodes[hosts[0]].update_value("Port", "8080")
        net.run(until=3.2)  # much less than a heartbeat period
        rec = nodes[hosts[1]].directory.get(hosts[0])
        assert rec.attrs["Port"] == "8080"

    def test_delete_value(self):
        net, hosts = make_cluster(1, 2)
        nodes = deploy(AllToAllNode, net, hosts)
        net.run(until=3.0)
        nodes[hosts[0]].update_value("k", "v")
        net.run(until=4.0)
        nodes[hosts[0]].delete_value("k")
        net.run(until=5.0)
        assert "k" not in nodes[hosts[1]].directory.get(hosts[0]).attrs

    def test_heartbeat_size_follows_member_size(self):
        config = ProtocolConfig(member_size=100, header_size=28)
        net, hosts = make_cluster(1, 2)
        deploy(AllToAllNode, net, hosts, config=config)
        net.run(until=2.5)
        hb_bytes = net.meter.bytes_by_kind("heartbeat")
        packets = net.meter.packets(direction="rx")
        assert hb_bytes == packets * 128
