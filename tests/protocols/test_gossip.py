"""Unit/integration tests for the gossip baseline."""

import math

import pytest

from repro.cluster import ServiceSpec
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import GossipNode, ProtocolConfig, deploy
from repro.protocols.gossip import gossip_fail_time


def make_gossip_cluster(n=8, seed=1, loss=0.0, config=None):
    topo, hosts = build_switched_cluster(1, n)
    net = Network(topo, seed=seed, loss_rate=loss)
    nodes = deploy(GossipNode, net, hosts, config=config, seeds=hosts)
    return net, hosts, nodes


class TestFailTime:
    def test_grows_logarithmically(self):
        t20 = gossip_fail_time(20)
        t100 = gossip_fail_time(100)
        assert t100 > t20
        # log2(100)-log2(20) = log2(5): the gap must match that, not 80x.
        assert (t100 - t20) == pytest.approx(math.log2(5), rel=1e-6)

    def test_tighter_mistake_prob_means_longer(self):
        assert gossip_fail_time(50, p_mistake=1e-6) > gossip_fail_time(50, p_mistake=1e-3)

    def test_scales_with_period(self):
        assert gossip_fail_time(50, period=2.0) == pytest.approx(2 * gossip_fail_time(50, period=1.0))

    def test_tiny_group_floor(self):
        assert gossip_fail_time(1) == 2.0


class TestFormation:
    def test_full_view_convergence(self):
        net, hosts, nodes = make_gossip_cluster(8)
        net.run(until=15.0)
        for node in nodes.values():
            assert node.view() == sorted(hosts)

    def test_records_propagate_through_gossip(self):
        topo, hosts = build_switched_cluster(1, 6)
        net = Network(topo, seed=2)
        specs = {hosts[0]: [ServiceSpec.make("index", "1-3")]}
        nodes = deploy(GossipNode, net, hosts, services=specs, seeds=hosts)
        net.run(until=15.0)
        found = nodes[hosts[5]].directory.lookup_service("index", "2")
        assert [r.node_id for r in found] == [hosts[0]]

    def test_seed_list_excludes_self(self):
        topo, hosts = build_switched_cluster(1, 3)
        net = Network(topo, seed=1)
        node = GossipNode(net, hosts[0], seeds=hosts)
        assert hosts[0] not in node.seeds

    def test_member_up_events(self):
        net, hosts, nodes = make_gossip_cluster(5)
        net.run(until=15.0)
        ups = net.trace.records(kind="member_up")
        assert len(ups) == 5 * 4


class TestDetection:
    def test_failure_detected_by_all(self):
        net, hosts, nodes = make_gossip_cluster(8)
        net.run(until=15.0)
        victim = hosts[3]
        nodes[victim].stop()
        net.crash_host(victim)
        kill = net.now
        net.run(until=kill + 60.0)
        downs = [r for r in net.trace.records(kind="member_down") if r.data["target"] == victim]
        assert {r.node for r in downs} == set(hosts) - {victim}
        detect = min(r.time for r in downs) - kill
        # detection should be around t_fail for n=8
        t_fail = gossip_fail_time(8)
        assert t_fail * 0.8 <= detect <= t_fail + 5.0

    def test_detection_slower_than_alltoall_constant(self):
        net, hosts, nodes = make_gossip_cluster(20)
        net.run(until=20.0)
        victim = hosts[0]
        nodes[victim].stop()
        net.crash_host(victim)
        kill = net.now
        net.run(until=kill + 60.0)
        downs = [r for r in net.trace.records(kind="member_down") if r.data["target"] == victim]
        detect = min(r.time for r in downs) - kill
        assert detect > ProtocolConfig().fail_timeout  # worse than ~5 s

    def test_dead_node_not_resurrected_by_stale_gossip(self):
        net, hosts, nodes = make_gossip_cluster(8)
        net.run(until=15.0)
        victim = hosts[3]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=net.now + 60.0)
        # After everyone declared it dead, keep gossiping a long time: the
        # dead entry must not flap back via stale views.
        for node in nodes.values():
            if node.node_id != victim:
                assert victim not in node.view()
        ups_after = [
            r
            for r in net.trace.records(kind="member_up", since=20.0)
            if r.data["target"] == victim
        ]
        assert ups_after == []

    def test_restart_with_higher_counter_rejoins(self):
        net, hosts, nodes = make_gossip_cluster(6)
        net.run(until=15.0)
        victim = hosts[2]
        nodes[victim].stop()
        net.crash_host(victim)
        net.run(until=net.now + 40.0)
        net.recover_host(victim)
        nodes[victim].start()
        net.run(until=net.now + 40.0)
        alive = [n for h, n in nodes.items() if h != victim]
        assert all(victim in n.view() for n in alive)

    def test_no_false_positives_when_quiet(self):
        net, hosts, nodes = make_gossip_cluster(10)
        net.run(until=60.0)
        assert net.trace.records(kind="member_down") == []


class TestPartition:
    def test_partition_splits_views_and_heals(self):
        topo, hosts = build_switched_cluster(2, 5)
        net = Network(topo, seed=4)
        nodes = deploy(GossipNode, net, hosts, seeds=hosts)
        net.run(until=20.0)
        net.fail_device("dc0-sw1")
        net.run(until=60.0)  # gossip needs its longer timeouts
        side_a = hosts[:5]
        side_b = hosts[5:]
        for h in side_a:
            assert nodes[h].view() == sorted(side_a), h
        for h in side_b:
            # Behind their own dead L2 switch, n1 members are fully alone.
            assert nodes[h].view() == [h], h
        net.recover_device("dc0-sw1")
        net.run(until=net.now + 80.0)
        for h, node in nodes.items():
            assert node.view() == sorted(hosts), h


class TestTraffic:
    def test_message_size_grows_with_view(self):
        net, hosts, nodes = make_gossip_cluster(10)
        net.run(until=5.0)
        net.meter.reset()
        net.run(until=15.0)
        per_packet = net.meter.bytes(direction="rx") / max(1, net.meter.packets(direction="rx"))
        cfg = ProtocolConfig()
        assert per_packet == pytest.approx(cfg.message_size(10), rel=0.05)

    def test_aggregate_bandwidth_quadratic(self):
        def agg(n):
            net, hosts, nodes = make_gossip_cluster(n)
            net.run(until=20.0)
            net.meter.reset()
            net.run(until=30.0)
            return net.meter.bytes(direction="rx")

        b5, b10 = agg(5), agg(10)
        # bytes/period ~ n * (h + s*n): ratio for 10 vs 5 ≈ 3.6
        assert 2.5 < b10 / b5 < 5.0

    def test_fanout_multiplies_messages(self):
        cfg2 = ProtocolConfig(gossip_fanout=2)
        net1, _, _ = make_gossip_cluster(8)
        net1.run(until=20.0)
        p1 = net1.meter.packets(direction="rx")
        net2, _, _ = make_gossip_cluster(8, config=cfg2)
        net2.run(until=20.0)
        p2 = net2.meter.packets(direction="rx")
        assert 1.6 < p2 / p1 < 2.4
