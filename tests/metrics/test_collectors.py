"""Tests for metric collectors."""

import pytest

from repro.metrics import (
    accuracy_timeseries,
    bandwidth_stats,
    convergence_time,
    detection_time,
    view_change_curve,
)
from repro.net import BandwidthMeter
from repro.sim import Trace


def make_trace(events):
    tr = Trace()
    for time, kind, node, target in events:
        tr.emit(time, kind, node=node, target=target)
    return tr


class TestDetectionConvergence:
    def test_detection_earliest_record(self):
        tr = make_trace(
            [
                (25.0, "member_down", "n1", "victim"),
                (26.0, "member_down", "n2", "victim"),
            ]
        )
        assert detection_time(tr, "victim", kill_time=20.0) == pytest.approx(5.0)

    def test_convergence_latest_record(self):
        tr = make_trace(
            [
                (25.0, "member_down", "n1", "victim"),
                (27.5, "member_down", "n2", "victim"),
            ]
        )
        assert convergence_time(tr, "victim", kill_time=20.0) == pytest.approx(7.5)

    def test_other_targets_ignored(self):
        tr = make_trace(
            [
                (22.0, "member_down", "n1", "other"),
                (25.0, "member_down", "n1", "victim"),
            ]
        )
        assert detection_time(tr, "victim", 20.0) == pytest.approx(5.0)

    def test_records_before_kill_ignored(self):
        tr = make_trace(
            [
                (10.0, "member_down", "n1", "victim"),
                (25.0, "member_down", "n1", "victim"),
            ]
        )
        assert detection_time(tr, "victim", 20.0) == pytest.approx(5.0)

    def test_none_when_undetected(self):
        tr = make_trace([])
        assert detection_time(tr, "victim", 20.0) is None
        assert convergence_time(tr, "victim", 20.0) is None

    def test_convergence_requires_all_observers(self):
        tr = make_trace([(25.0, "member_down", "n1", "victim")])
        assert convergence_time(tr, "victim", 20.0, expected_observers=["n1", "n2"]) is None
        assert convergence_time(tr, "victim", 20.0, expected_observers=["n1"]) == pytest.approx(5.0)


class TestBandwidthStats:
    def test_rates(self):
        m = BandwidthMeter()
        m.record(0.0, "h1", "rx", "hb", 500)
        m.record(5.0, "h2", "rx", "hb", 500)
        stats = bandwidth_stats(m, duration=10.0, num_nodes=2)
        assert stats.total_rx_bytes == 1000
        assert stats.aggregate_rate == pytest.approx(100.0)
        assert stats.per_node_rate == pytest.approx(50.0)
        assert stats.packet_rate == pytest.approx(0.2)

    def test_zero_duration(self):
        m = BandwidthMeter()
        stats = bandwidth_stats(m, duration=0.0, num_nodes=5)
        assert stats.aggregate_rate == 0.0


class TestAccuracy:
    def test_perfect_accuracy_steady_state(self):
        hosts = ["a", "b"]
        tr = make_trace(
            [
                (0.5, "member_up", "a", "b"),
                (0.5, "member_up", "b", "a"),
            ]
        )
        alive = {h: [(0.0, 100.0)] for h in hosts}
        series = accuracy_timeseries(tr, hosts, alive, horizon=5.0)
        assert series[0][1] < 1.0  # before discovery
        assert all(v == 1.0 for t, v in series if t >= 1.0)

    def test_accuracy_dips_between_kill_and_detection(self):
        hosts = ["a", "b", "c"]
        events = []
        for obs in hosts:
            for tgt in hosts:
                if obs != tgt:
                    events.append((0.5, "member_up", obs, tgt))
        # c dies at t=10; a and b notice at t=15
        events.append((15.0, "member_down", "a", "c"))
        events.append((15.0, "member_down", "b", "c"))
        tr = make_trace(events)
        alive = {"a": [(0.0, 100.0)], "b": [(0.0, 100.0)], "c": [(0.0, 10.0)]}
        series = dict(accuracy_timeseries(tr, hosts, alive, horizon=20.0))
        assert series[5.0] == 1.0
        assert series[12.0] < 1.0  # stale entry for c
        assert series[16.0] == 1.0  # purged

    def test_dead_observers_excluded(self):
        hosts = ["a", "b"]
        tr = make_trace([(0.5, "member_up", "a", "b"), (0.5, "member_up", "b", "a")])
        alive = {"a": [(0.0, 100.0)], "b": [(0.0, 5.0)]}
        series = dict(accuracy_timeseries(tr, hosts, alive, horizon=10.0))
        # After b dies, only a is scored; a still lists b -> accuracy < 1.
        assert series[7.0] < 1.0

    def test_view_reset_wipes_reconstructed_view(self):
        """A daemon restart drops the pre-crash view until re-discovery."""
        hosts = ["a", "b", "c"]
        events = []
        for obs in hosts:
            for tgt in hosts:
                if obs != tgt:
                    events.append((0.5, "member_up", obs, tgt))
        tr = make_trace(events)
        # a restarts at t=10 (instantly, so it stays an observer
        # throughout) and only re-learns b at t=12; c stays unknown.
        tr.emit(10.0, "view_reset", node="a")
        tr.emit(12.0, "member_up", node="a", target="b")
        alive = {h: [(0.0, 100.0)] for h in hosts}
        series = dict(accuracy_timeseries(tr, hosts, alive, horizon=20.0))
        assert series[9.0] == 1.0
        # At t=11, a's view is {a}: per-observer Jaccard = 1/3, averaged
        # with two perfect observers.
        assert series[11.0] == pytest.approx((1 / 3 + 1.0 + 1.0) / 3)
        # b re-learned, c still missing: a scores 2/3.
        assert series[13.0] == pytest.approx((2 / 3 + 1.0 + 1.0) / 3)

    def test_view_reset_tied_with_member_up_applies_first(self):
        """At a tied timestamp the reset must not wipe same-time ups.

        Per-observer events sort by (time, op) and ``"reset"`` orders
        before ``"up"``, so a restart and the first re-discovery landing
        on the same tick leave the discovery in the view.
        """
        hosts = ["a", "b"]
        tr = make_trace(
            [
                (0.5, "member_up", "a", "b"),
                (0.5, "member_up", "b", "a"),
            ]
        )
        tr.emit(10.0, "view_reset", node="a")
        tr.emit(10.0, "member_up", node="a", target="b")
        alive = {h: [(0.0, 100.0)] for h in hosts}
        series = dict(accuracy_timeseries(tr, hosts, alive, horizon=15.0))
        assert all(v == 1.0 for t, v in series.items() if t >= 1.0)


class TestViewChangeCurve:
    def test_cumulative_counts_one_per_observer(self):
        tr = make_trace(
            [
                (25.0, "member_down", "n1", "victim"),
                (26.0, "member_down", "n2", "victim"),
                (27.0, "member_down", "n1", "victim"),  # repeat: not recounted
            ]
        )
        curve = view_change_curve(tr, "victim", ["n1", "n2"], since=20.0)
        assert curve == [(5.0, 1), (6.0, 2)]

    def test_tied_timestamps_each_get_a_point(self):
        """Observers detecting on the same tick must all appear.

        Simultaneous detections are the common case under the paper's
        1-second heartbeat grid; the curve keeps one point per observer
        (same x, increasing y), not one collapsed point.
        """
        tr = make_trace(
            [
                (25.0, "member_down", "n1", "victim"),
                (25.0, "member_down", "n2", "victim"),
                (25.0, "member_down", "n3", "victim"),
                (26.0, "member_down", "n4", "victim"),
            ]
        )
        curve = view_change_curve(tr, "victim", ["n1", "n2", "n3", "n4"], since=20.0)
        assert curve == [(5.0, 1), (5.0, 2), (5.0, 3), (6.0, 2 + 2)]
        # The final y equals the observer count: nobody double-counted.
        assert curve[-1][1] == 4

    def test_earliest_record_wins_even_out_of_order(self):
        tr = make_trace(
            [
                (27.0, "member_down", "n1", "victim"),
                (25.0, "member_down", "n1", "victim"),  # earlier, logged later
            ]
        )
        curve = view_change_curve(tr, "victim", ["n1"], since=20.0)
        assert curve == [(5.0, 1)]

    def test_member_up_kind_and_watch_filter(self):
        tr = make_trace(
            [
                (30.0, "member_up", "n1", "victim"),
                (31.0, "member_up", "outsider", "victim"),
                (32.0, "member_up", "n2", "other"),
            ]
        )
        curve = view_change_curve(
            tr, "victim", ["n1", "n2"], since=28.0, kind="member_up"
        )
        assert curve == [(2.0, 1)]
