"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.scheme == "hierarchical"
        assert args.networks == 3

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--scheme", "bogus"])


class TestCommands:
    def test_formation_output(self, capsys):
        assert main(["formation", "--networks", "2", "--hosts", "3"]) == 0
        out = capsys.readouterr().out
        assert "L0:leader" in out
        assert out.count("view=   6") == 6

    def test_detect_output(self, capsys):
        code = main(
            ["detect", "--networks", "1", "--hosts", "5", "--observe", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection   : 5." in out
        assert "observers   : 4/4" in out

    def test_detect_kill_leader(self, capsys):
        code = main(
            ["detect", "--networks", "1", "--hosts", "5", "--observe", "40", "--kill-leader"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(leader)" in out

    def test_analysis_output(self, capsys):
        assert main(["analysis", "--sizes", "100", "1000"]) == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out
        assert "    100" in out and "   1000" in out

    def test_compare_small(self, capsys):
        assert main(
            ["compare", "--networks", "1", "--hosts", "4", "--observe", "40"]
        ) == 0
        out = capsys.readouterr().out
        for scheme in ("all-to-all", "gossip", "hierarchical"):
            assert scheme in out
