"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.scheme == "hierarchical"
        assert args.networks == 3

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--scheme", "bogus"])


class TestCommands:
    def test_formation_output(self, capsys):
        assert main(["formation", "--networks", "2", "--hosts", "3"]) == 0
        out = capsys.readouterr().out
        assert "L0:leader" in out
        assert out.count("view=   6") == 6

    def test_detect_output(self, capsys):
        code = main(
            ["detect", "--networks", "1", "--hosts", "5", "--observe", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection   : 5." in out
        assert "observers   : 4/4" in out

    def test_detect_kill_leader(self, capsys):
        code = main(
            ["detect", "--networks", "1", "--hosts", "5", "--observe", "40", "--kill-leader"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(leader)" in out

    def test_analysis_output(self, capsys):
        assert main(["analysis", "--sizes", "100", "1000"]) == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out
        assert "    100" in out and "   1000" in out

    def test_compare_small(self, capsys):
        assert main(
            ["compare", "--networks", "1", "--hosts", "4", "--observe", "40"]
        ) == 0
        out = capsys.readouterr().out
        for scheme in ("all-to-all", "gossip", "hierarchical"):
            assert scheme in out

    def test_obs_prometheus_output(self, capsys):
        code = main(
            ["obs", "--networks", "1", "--hosts", "4", "--observe", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_heartbeats_tx_total counter" in out
        assert "repro_multicast_fanout_bucket" in out
        assert "repro_sim_now_seconds 20" in out

    def test_obs_json_output(self, capsys):
        import json

        code = main(
            ["obs", "--networks", "1", "--hosts", "4", "--observe", "20",
             "--format", "json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        names = {fam["name"] for fam in data}
        assert "repro_heartbeats_tx_total" in names

    def test_obs_trace_out(self, capsys, tmp_path):
        from repro.obs import read_jsonl_trace

        path = tmp_path / "trace.jsonl"
        code = main(
            ["obs", "--networks", "1", "--hosts", "4", "--observe", "20",
             "--trace-out", str(path)]
        )
        assert code == 0
        records = read_jsonl_trace(path)
        assert records
        assert any(r.kind == "member_up" for r in records)
