"""Tests for the comparative failure-experiment runner."""

import pytest

from repro.metrics import SCHEMES, FailureExperiment, make_scheme_cluster


class TestMakeSchemeCluster:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_deploys_and_converges(self, scheme):
        net, hosts, nodes = make_scheme_cluster(scheme, networks=1, hosts_per_network=6, seed=1)
        net.run(until=20.0)
        assert all(len(n.view()) == 6 for n in nodes.values())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_scheme_cluster("bogus", 1, 4)


class TestFailureExperiment:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_detects_and_converges(self, scheme):
        exp = FailureExperiment(
            scheme, networks=2, hosts_per_network=5, seed=1, observe=60.0
        )
        result = exp.run()
        assert result.num_nodes == 10
        assert result.detection is not None
        assert result.convergence is not None
        assert result.convergence >= result.detection
        assert result.observers == 9

    def test_bandwidth_window_measured(self):
        exp = FailureExperiment("all-to-all", networks=1, hosts_per_network=5, seed=1)
        result = exp.run()
        # 5 nodes x 4 receivers x 256 B x 1 Hz = 5120 B/s.
        assert result.bandwidth.aggregate_rate == pytest.approx(5120, rel=0.15)

    def test_bandwidth_skippable(self):
        exp = FailureExperiment(
            "all-to-all", networks=1, hosts_per_network=4, seed=1, measure_bandwidth=False
        )
        assert exp.run().bandwidth is None

    def test_heartbeat_detection_near_fail_timeout(self):
        for scheme in ("all-to-all", "hierarchical"):
            result = FailureExperiment(scheme, 2, 5, seed=2).run()
            assert 5.0 <= result.detection <= 7.0

    def test_gossip_slower_than_heartbeat_schemes(self):
        gossip = FailureExperiment("gossip", 2, 10, seed=3, observe=80.0).run()
        hier = FailureExperiment("hierarchical", 2, 10, seed=3).run()
        assert gossip.detection > hier.detection

    def test_hierarchical_victim_is_not_a_leader_by_default(self):
        exp = FailureExperiment("hierarchical", 2, 5, seed=1)
        result = exp.run()
        # Leaders are the lowest-id host of each network.
        assert not result.victim.endswith("-h0")

    def test_kill_leader_flag(self):
        exp = FailureExperiment("hierarchical", 2, 5, seed=1, kill_leader=True, observe=60.0)
        result = exp.run()
        assert result.victim.endswith("-h0")
        assert result.detection is not None

    def test_deterministic(self):
        r1 = FailureExperiment("hierarchical", 2, 5, seed=7).run()
        r2 = FailureExperiment("hierarchical", 2, 5, seed=7).run()
        assert r1 == r2
