"""Real-network hardening smoke tests (marker: ``network``).

The two cliffs PR 9 closes, exercised end-to-end over real loopback
UDP:

* a membership-view payload larger than one UDP datagram is delivered
  intact daemon-to-daemon through the channel relay (fragmentation at
  the sender, byte-for-byte fragment forwarding at the relay,
  reassembly at the receiver);
* SIGKILLing the active relay process mid-run does not prevent the
  20-daemon cluster from re-converging — daemons detect the dead relay
  via missing announce acks and fail over to the standby replica.

Excluded from the default (tier-1) run; CI runs them in the dedicated
network job under a hard timeout::

    python -m pytest -m network -q tests/network/
"""

import asyncio
import pathlib
import socket
import sys
import time

import pytest

pytestmark = pytest.mark.network

# The launcher doubles as the test harness (examples/ is not a package).
_EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
if str(_EXAMPLES) not in sys.path:
    sys.path.insert(0, str(_EXAMPLES))

from launch_cluster import LocalCluster, build_spec  # noqa: E402

from repro.cluster.directory import NodeRecord  # noqa: E402
from repro.runtime.anet import (  # noqa: E402
    AsyncRuntime,
    ClusterSpec,
    NodeSpec,
    RelaySpec,
)
from repro.runtime.relay import serve  # noqa: E402
from repro.runtime.wire import MAX_UDP_PAYLOAD, encode_packet  # noqa: E402
from repro.net.packet import Packet  # noqa: E402

NUM_NODES = 20
SEGMENTS = 2
HEARTBEAT_PERIOD = 0.5
#: Worst-case relay blackout: RELAY_TIMEOUT (3 x 2 s re-announce) plus a
#: tick of slack before the replica acks and multicast resumes.
FAILOVER_SLACK = 10.0


def _free_ports(count):
    socks, ports = [], []
    try:
        for _ in range(count):
            s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            s.bind(("127.0.0.1", 0))
            socks.append(s)
            ports.append(s.getsockname()[1])
        return ports
    finally:
        for s in socks:
            s.close()


def test_view_payload_larger_than_one_datagram_delivered_intact():
    """>64 KiB of membership view crosses the relay daemon-to-daemon."""
    relay_port, pa, pb = _free_ports(3)
    spec = ClusterSpec(
        relay=RelaySpec(host="127.0.0.1", port=relay_port),
        nodes={
            "a": NodeSpec(host="127.0.0.1", port=pa, segment="s0"),
            "b": NodeSpec(host="127.0.0.1", port=pb, segment="s1"),
        },
    )
    records = [
        NodeRecord(node_id=f"node-{i:05d}", incarnation=i,
                   services={"svc": f"range-{i}"}, attrs={})
        for i in range(3000)
    ]
    payload = {"kind": "sync_snapshot", "records": records}
    # The premise: this view genuinely exceeds one UDP datagram.
    frame = encode_packet(
        Packet(src="a", kind="sync", payload=payload, size=70000, channel="views", ttl=2)
    )
    assert len(frame) > MAX_UDP_PAYLOAD

    async def scenario():
        relay = await serve(spec, "127.0.0.1", relay_port)
        a = AsyncRuntime(spec, "a")
        b = AsyncRuntime(spec, "b")
        await a.start()
        await b.start()
        a.activate()
        b.activate()
        got = []
        try:
            b.subscribe("views", got.append)
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30.0
            while not got:
                assert loop.time() < deadline, "oversize view never delivered"
                a.publish("views", 2, "sync", payload, size=70000)
                await asyncio.sleep(0.25)
        finally:
            a.close()
            b.close()
            relay.stop_sweeper()
            relay._transport.close()
        return got[0]

    pkt = asyncio.run(scenario())
    assert pkt.src == "a" and pkt.kind == "sync"
    assert pkt.payload["records"] == records


def test_relay_sigkill_mid_run_cluster_reconverges_via_replica():
    """Kill the active relay under a converged 20-daemon cluster.

    The blackout (up to the ack timeout) outlives the failure-detection
    bound, so views dip; the assertion is that every survivor fails
    over to the replica relay and the full view re-forms.
    """
    spec = build_spec(
        NUM_NODES,
        SEGMENTS,
        config={"heartbeat_period": HEARTBEAT_PERIOD},
        relay_replicas=1,
    )
    with LocalCluster(spec) as cluster:
        took = cluster.wait_for_views(NUM_NODES, deadline=60.0)
        assert took <= 60.0

        cluster.kill_relay(0)
        # Let the blackout play out fully (false deaths included) so
        # re-convergence below genuinely proves multicast is back.
        time.sleep(FAILOVER_SLACK)
        cluster.wait_for_views(NUM_NODES, deadline=90.0)

        # Every polled daemon reports the replica as its active relay.
        for node_id in sorted(cluster.daemons)[:3]:
            view = cluster.view(node_id)
            assert view is not None
            assert view["relay"]["active_index"] == 1
            assert view["relay"]["failovers"] >= 1
            assert view["relay"]["fallback"] is False
