"""Real-network smoke test: 20 daemons over UDP on localhost.

Boots the channel relay plus 20 ``repro.cli daemon`` OS processes (two
LAN segments of 10), waits for every daemon's HTTP ``/view`` to report
the full membership, SIGKILLs one node, and verifies the survivors
detect and purge it within the protocol's failure bound.

Marked ``network``: excluded from the default (tier-1) run — it binds
dozens of UDP/TCP ports and takes tens of wall-clock seconds.  CI runs
it in a dedicated job with a hard timeout::

    python -m pytest -m network -q tests/network/
"""

import pathlib
import sys
import time

import pytest

pytestmark = pytest.mark.network

# The launcher doubles as the test harness (examples/ is not a package).
_EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
if str(_EXAMPLES) not in sys.path:
    sys.path.insert(0, str(_EXAMPLES))

from launch_cluster import LocalCluster, build_spec  # noqa: E402

NUM_NODES = 20
SEGMENTS = 2
HEARTBEAT_PERIOD = 0.5
MAX_LOSS = 5  # protocol default: declared dead after 5 missed heartbeats


def test_twenty_daemon_cluster_converges_and_detects_failure():
    spec = build_spec(
        NUM_NODES, SEGMENTS, config={"heartbeat_period": HEARTBEAT_PERIOD}
    )
    with LocalCluster(spec) as cluster:
        # Full convergence: every daemon sees all 20 members.
        took = cluster.wait_for_views(NUM_NODES, deadline=60.0)
        assert took <= 60.0

        # Every daemon serves real observability endpoints.
        some_node = sorted(cluster.daemons)[0]
        metrics = cluster.metrics(some_node)
        assert metrics is not None
        assert "repro_heartbeats_tx_total" in metrics
        view = cluster.view(some_node)
        assert view is not None and view["count"] == NUM_NODES
        # Every daemon resolved a level-0 leader, and the hierarchy
        # forms: at least one daemon joins (and wins) a cross-segment
        # level.  Only level-0 leaders join levels >= 1 and that
        # election has its own (longer) timeout, so poll with a deadline
        # instead of asserting the instant the views converge.
        assert view["levels"]["0"]["leader"] is not None

        def hierarchy_formed():
            return any(
                info["i_am_leader"] and int(level) >= 1
                for node_id in sorted(cluster.daemons)
                for level, info in (cluster.view(node_id) or {"levels": {}})[
                    "levels"
                ].items()
            )

        deadline = time.monotonic() + 30.0
        while not hierarchy_formed():
            assert time.monotonic() < deadline, "no cross-segment leader elected"
            time.sleep(0.5)

        # Kill one daemon (unannounced).  Survivors must detect the
        # silence and purge the record: the protocol bound is max_loss
        # missed heartbeats plus relay/purge slack.
        victim = sorted(cluster.daemons)[-1]
        cluster.kill(victim)
        survivors = sorted(cluster.daemons)
        assert len(survivors) == NUM_NODES - 1
        detect_deadline = MAX_LOSS * HEARTBEAT_PERIOD * 4 + 10.0
        cluster.wait_for_views(
            NUM_NODES - 1, deadline=detect_deadline, node_ids=survivors
        )
        for node_id in (survivors[0], survivors[-1]):
            view = cluster.view(node_id)
            assert view is not None
            assert victim not in view["members"]
